"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (see DESIGN.md §"Observability"):

* **Cheap enough to stay on by default.**  An instrument is a tiny
  ``__slots__`` object the instrumented code holds directly (or reaches
  through one dict lookup); recording is an attribute add.  There are
  no locks — registries are strictly per-process (the pipeline merges
  worker snapshots at aggregation, it never shares a registry across
  processes).
* **A hard off switch.**  With ``REPRO_OBS=off`` every accessor returns
  a shared null instrument whose record methods are no-ops, and
  :meth:`Registry.span` returns a shared no-op context manager — the
  instrumented code keeps exactly one extra method call per record
  point and zero clock reads.
* **Mergeable snapshots.**  :meth:`Registry.snapshot` produces a plain
  JSON-able dict; :meth:`Registry.merge` folds such a snapshot back in
  (counters sum, gauge values sum / peaks max, histogram buckets sum,
  span trees add node-wise).  This is how per-worker registries flow
  back over the pipeline's result queue and come out as one merged
  per-stage view plus per-worker breakdowns.

Metric naming: dotted lowercase paths (``core.insert.fragments``),
optionally labelled — ``counter("detector.events", tool="MUST-RMA")``
is stored under the key ``detector.events{tool=MUST-RMA}``.  Labels are
part of the key, nothing more; there is no label indexing.
"""

from __future__ import annotations

import os
import warnings
from time import perf_counter_ns
from typing import Dict, Iterator, List, Optional, Tuple

from .timeline import make_timeline

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanNode",
    "env_enabled",
    "metric_key",
    "sample_period_from_env",
]

#: histogram bucket upper bounds: powers of two up to 2**20, then +inf.
#: Fixed at module level so snapshots from any process line up bucket
#: for bucket and merging is a plain element-wise sum.
BUCKET_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(21))
_NBUCKETS = len(BUCKET_BOUNDS) + 1  # one overflow bucket


def env_enabled(default: bool = True) -> bool:
    """The ``REPRO_OBS`` switch: off/0/false/no disable, anything else on."""
    raw = os.environ.get("REPRO_OBS")
    if raw is None:
        return default
    return raw.strip().lower() not in ("off", "0", "false", "no", "disabled")


_warned_sample: set = set()


def sample_period_from_env(default: int = 64) -> int:
    """The ``REPRO_OBS_SAMPLE`` knob: phase-timing sample period.

    Must be a positive power of two (the hot path masks with
    ``period - 1``); anything else warns once per distinct value and
    falls back to the default so a typo cannot fail a run.
    """
    raw = os.environ.get("REPRO_OBS_SAMPLE")
    if raw is None:
        return default
    try:
        period = int(raw.strip())
    except ValueError:
        period = -1
    if period < 1 or (period & (period - 1)):
        if raw not in _warned_sample:
            _warned_sample.add(raw)
            warnings.warn(
                f"REPRO_OBS_SAMPLE={raw!r} is not a positive power of "
                f"two; using {default}",
                RuntimeWarning, stacklevel=2,
            )
        return default
    return period


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """``name`` or ``name{k=v,...}`` with label keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic event count; merge = sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def inc(self) -> None:
        self.value += 1


class Gauge:
    """Last-set value with a high-water mark.

    Merge semantics: ``value`` sums (per-process registries describe
    disjoint state, e.g. BST nodes per shard), ``peak`` maxes.
    """

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0
        self.peak = 0

    def set(self, v) -> None:
        self.value = v
        if v > self.peak:
            self.peak = v


class Histogram:
    """Fixed-bucket distribution (bounds :data:`BUCKET_BOUNDS`); merge = sum.

    ``observe`` buckets by ``int.bit_length`` — one arithmetic op, no
    search — so it is safe on query-fan-out and latency hot paths.
    ``vmax`` tracks the exact observed maximum (one compare per
    observe), so summaries never have to estimate it from the top
    occupied bucket's upper bound.
    """

    __slots__ = ("counts", "total", "n", "vmax")

    def __init__(self) -> None:
        self.counts = [0] * _NBUCKETS
        self.total = 0
        self.n = 0
        self.vmax = 0

    def observe(self, v: int) -> None:
        # bucket i holds values with bit_length i (<= BUCKET_BOUNDS[i])
        i = v.bit_length() if v > 0 else 0
        self.counts[i if i < _NBUCKETS else _NBUCKETS - 1] += 1
        self.total += v
        self.n += 1
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


class SpanNode:
    """One node of the span time-tree: cumulative wall time by phase."""

    __slots__ = ("name", "count", "total_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ns = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def self_ns(self) -> int:
        """Time not attributed to any child span."""
        return self.total_ns - sum(c.total_ns for c in self.children.values())

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "children": {
                k: self.children[k].to_dict() for k in sorted(self.children)
            },
        }

    def merge_dict(self, d: dict) -> None:
        self.count += d.get("count", 0)
        self.total_ns += d.get("total_ns", 0)
        for name, sub in d.get("children", {}).items():
            self.child(name).merge_dict(sub)

    def walk(self, path: str = "") -> Iterator[Tuple[str, "SpanNode"]]:
        """(slash path, node) pairs, depth first, children name-sorted."""
        for name in sorted(self.children):
            node = self.children[name]
            sub = f"{path}/{name}" if path else name
            yield sub, node
            yield from node.walk(sub)


class _Span:
    """Context manager of one span activation (allocated per ``with``)."""

    __slots__ = ("_reg", "_name", "_node", "_t0")

    def __init__(self, reg: "Registry", name: str) -> None:
        self._reg = reg
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._reg._stack
        self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        node = self._node
        node.total_ns += perf_counter_ns() - self._t0
        node.count += 1
        stack = self._reg._stack
        # tolerate exits out of order (an exception unwound past spans)
        while stack[-1] is not node and len(stack) > 1:
            stack.pop()
        if len(stack) > 1:
            stack.pop()


class _NullSpan:
    """Shared no-op context manager for disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullCounter(Counter):
    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass

    inc = add  # type: ignore[assignment]


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, v: int) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class Registry:
    """One process's metrics: instruments by key plus the span tree.

    Hot-path contract: callers that record once *per analysed access*
    must (a) cache the instrument object and bump ``.value`` directly —
    the get-or-create accessors cost a key format plus a dict probe per
    call, which blows the <=5% metrics-on budget at that frequency —
    and (b) gate clock reads on :meth:`sample`, which approves one call
    in ``SAMPLE_MASK + 1``.  Cached handles stay valid across
    :meth:`reset` (instruments are zeroed in place, never replaced) but
    belong to *this* registry: recheck identity after any
    ``obs.scope()`` / ``obs.reset()`` swap.
    """

    #: phase timings on per-access paths keep 1 sample in (mask + 1);
    #: counts stay exact, sampled span totals are a profile, not a sum.
    #: The class value is the default; each instance re-reads the
    #: ``REPRO_OBS_SAMPLE`` env knob (power of two, default 64) so
    #: overhead-sensitive runs can dial the sampling rate.
    SAMPLE_MASK = 63

    def __init__(self, *, enabled: Optional[bool] = None) -> None:
        #: hot-path guard — instrumented code may skip clock reads on it
        self.enabled: bool = env_enabled() if enabled is None else enabled
        self.SAMPLE_MASK = sample_period_from_env(
            type(self).SAMPLE_MASK + 1) - 1
        #: bounded per-rank event history feeding race forensics; the
        #: shared null timeline when obs or REPRO_OBS_TIMELINE is off
        self.timeline = make_timeline(enabled=self.enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._tick = 0
        self.root = SpanNode("")
        self._stack: List[SpanNode] = [self.root]

    # -- instrument accessors (get-or-create) -------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        key = metric_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        key = metric_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(self, name: str, **labels: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = metric_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram()
        return h

    def add(self, name: str, n: int = 1) -> None:
        """One-shot counter add for cold paths (no instrument handle)."""
        self.counter(name).add(n)

    # -- spans --------------------------------------------------------------

    def span(self, name: str):
        """``with reg.span("stage"):`` — nests under the active span."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def phase_ns(self, name: str, dt_ns: int) -> None:
        """Low-level span accumulation for per-event hot paths.

        Books ``dt_ns`` on the child ``name`` of the *currently active*
        span without pushing the stack — two clock reads and a dict get
        at the call site, nothing more.  Callers must guard with
        ``if reg.enabled:`` (this method assumes an enabled registry).
        """
        node = self._stack[-1].child(name)
        node.count += 1
        node.total_ns += dt_ns

    def sample(self) -> bool:
        """True once per ``SAMPLE_MASK + 1`` calls — gate hot clock reads.

        Hot loops may inline the same arithmetic on ``_tick`` to save
        the call frame; this method is the readable form.
        """
        t = self._tick + 1
        self._tick = t
        return not (t & self.SAMPLE_MASK)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument *in place* — cached handles stay valid."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0
            g.peak = 0
        for h in self._histograms.values():
            h.counts = [0] * _NBUCKETS
            h.total = 0
            h.n = 0
            h.vmax = 0
        self._tick = 0
        self.root = SpanNode("")
        self._stack = [self.root]
        self.timeline.clear()

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self) -> dict:
        """Stable, JSON-able state dump (schema ``repro-obs-v1``)."""
        return {
            "schema": "repro-obs-v1",
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: {"value": g.value, "peak": g.peak}
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: {"counts": list(h.counts), "total": h.total, "n": h.n,
                    "max": h.vmax}
                for k, h in sorted(self._histograms.items())
            },
            "spans": self.root.to_dict(),
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry."""
        if not self.enabled or not snap:
            return
        for key, value in snap.get("counters", {}).items():
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
            c.value += value
        for key, gv in snap.get("gauges", {}).items():
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
            g.value += gv["value"]
            if gv["peak"] > g.peak:
                g.peak = gv["peak"]
        for key, hv in snap.get("histograms", {}).items():
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram()
            for i, n in enumerate(hv["counts"]):
                h.counts[i] += n
            h.total += hv["total"]
            h.n += hv["n"]
            m = hv.get("max", 0)
            if m > h.vmax:
                h.vmax = m
        self.root.merge_dict(snap.get("spans", {}))

"""Chrome trace-event JSON export of an execution's timeline.

Writes the "JSON Array Format" the Chromium trace viewer and Perfetto
(`chrome://tracing`, https://ui.perfetto.dev) load directly:

* one **process per MPI rank** (``pid`` = rank, named ``rank N``),
* per-window **epoch spans** as ``B``/``E`` duration events on their own
  thread track (``tid`` = window id + 1, named ``win N epochs``),
* every instrumented **access** as a unit-duration ``X`` event on the
  rank's access track (``tid`` 0), carrying interval/type/source args,
* synchronization (flushes, barriers, window create/free) as ``i``
  instant events,
* detected **races** as global instant events after the end of the
  stream, naming both source locations of the pair.

Timestamps are the global trace sequence numbers — deterministic and
strictly increasing, so two exports of the same trace are identical
byte-for-byte and every track is monotonic (what
:func:`validate_chrome_trace` checks, and CI smoke-tests).

Two producers share the builder: ``repro analyze --trace-out`` streams
the full recorded trace, ``repro run --trace-out`` drains the bounded
in-memory timeline ring (:mod:`repro.obs.timeline`), so a long run
exports its last-K window.  Like the timeline module, nothing here
imports the rest of ``repro``: trace events are duck-typed.

Validate a file from the shell::

    python -m repro.obs.chrometrace trace.json
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ChromeTraceBuilder",
    "chrome_events_from_timeline",
    "chrome_events_from_trace",
    "race_instants",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: keys every non-metadata trace event must carry
REQUIRED_KEYS = ("ph", "ts", "pid", "tid")

#: tid of a rank's access track; epoch tracks are ``wid + _EPOCH_TID``
ACCESS_TID = 0
_EPOCH_TID = 1


class ChromeTraceBuilder:
    """Accumulates trace-event dicts; tracks open epochs for B/E pairing."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._named_pids: set = set()
        self._named_tracks: set = set()
        #: open epoch spans: (pid, wid) -> ts of the B event
        self._open: Dict[Tuple[int, int], int] = {}
        self.max_ts = 0

    # -- naming -------------------------------------------------------------

    def _meta(self, name: str, pid: int, args: dict,
              tid: int = 0) -> None:
        self.events.append({
            "ph": "M", "name": name, "pid": pid, "tid": tid, "args": args,
        })

    def _ensure_pid(self, pid: int) -> None:
        if pid not in self._named_pids:
            self._named_pids.add(pid)
            label = f"rank {pid}" if pid >= 0 else "world"
            self._meta("process_name", pid, {"name": label})

    def _ensure_track(self, pid: int, tid: int) -> None:
        self._ensure_pid(pid)
        if (pid, tid) not in self._named_tracks:
            self._named_tracks.add((pid, tid))
            label = ("accesses" if tid == ACCESS_TID
                     else f"win {tid - _EPOCH_TID} epochs")
            self._meta("thread_name", pid, {"name": label}, tid)

    # -- event emission -----------------------------------------------------

    def _tick(self, ts: int) -> int:
        if ts > self.max_ts:
            self.max_ts = ts
        return ts

    def access(self, pid: int, ts: int, name: str, args: dict) -> None:
        self._ensure_track(pid, ACCESS_TID)
        self.events.append({
            "ph": "X", "name": name, "cat": "access", "ts": self._tick(ts),
            "dur": 1, "pid": pid, "tid": ACCESS_TID, "args": args,
        })

    def instant(self, pid: int, tid: int, ts: int, name: str,
                scope: str = "t") -> None:
        self._ensure_track(pid, tid)
        self.events.append({
            "ph": "i", "name": name, "cat": "sync", "ts": self._tick(ts),
            "pid": pid, "tid": tid, "s": scope,
        })

    def epoch_begin(self, pid: int, wid: int, ts: int) -> None:
        key = (pid, wid)
        if key in self._open:  # re-opened without a close: close first
            self.epoch_end(pid, wid, ts)
        tid = wid + _EPOCH_TID
        self._ensure_track(pid, tid)
        self._open[key] = ts
        self.events.append({
            "ph": "B", "name": f"epoch win {wid}", "cat": "epoch",
            "ts": self._tick(ts), "pid": pid, "tid": tid,
        })

    def epoch_end(self, pid: int, wid: int, ts: int) -> None:
        if (pid, wid) not in self._open:
            return  # E without B (ring scrolled past it): drop
        del self._open[(pid, wid)]
        self.events.append({
            "ph": "E", "ts": self._tick(ts), "pid": pid,
            "tid": wid + _EPOCH_TID,
        })

    # -- adapters -----------------------------------------------------------

    def sync(self, kind: str, rank: int, wid: int, ts: int,
             lanes: Iterable[int]) -> None:
        """One synchronization event, applied to every lane's tracks."""
        if kind == "lock_all":
            self.epoch_begin(rank, wid, ts)
        elif kind == "unlock_all":
            self.epoch_end(rank, wid, ts)
        elif kind == "fence":
            for lane in lanes:
                self.epoch_end(lane, wid, ts)
                self.epoch_begin(lane, wid, ts)
        elif kind == "win_free":
            for lane in lanes:
                self.epoch_end(lane, wid, ts)
                self.instant(lane, wid + _EPOCH_TID, ts, f"win_free {wid}")
        elif kind == "win_create":
            for lane in lanes:
                self.instant(lane, wid + _EPOCH_TID, ts,
                             f"win_create {wid}")
        elif kind == "barrier":
            for lane in lanes:
                self.instant(lane, ACCESS_TID, ts, "barrier", scope="g")
        else:  # flush / flush_all / anything future
            pid = rank if rank >= 0 else 0
            name = kind + (f" win {wid}" if wid >= 0 else "")
            self.instant(pid, ACCESS_TID, ts, name)

    def finish(self) -> List[dict]:
        """Close dangling epoch spans and return the event list."""
        if self._open:
            ts = self.max_ts + 1
            for pid, wid in sorted(self._open):
                self.events.append({
                    "ph": "E", "ts": ts, "pid": pid,
                    "tid": wid + _EPOCH_TID,
                })
            self._open.clear()
            self.max_ts = ts
        return self.events


def _access_name(acc_args: dict, op: Optional[str],
                 target: int) -> str:
    if op is not None:
        return f"{op} -> rank {target}"
    return acc_args["type"].lower()


def _access_args(lo, hi, type_, file, line, origin) -> dict:
    return {"lo": lo, "hi": hi, "type": type_,
            "src": f"{file}:{line}", "origin": origin}


def chrome_events_from_trace(events, nranks: int) -> List[dict]:
    """Chrome events for a full recorded trace (``analyze --trace-out``).

    ``events`` is any iterable of :mod:`repro.mpi.trace` events
    (duck-typed, like the timeline adapters); RMA operations draw on
    both ranks' access tracks.
    """
    builder = ChromeTraceBuilder()
    lanes = range(nranks)
    for event in events:
        op = getattr(event, "op", None)
        if op is not None:
            for pid, acc in ((event.rank, event.origin_access),
                             (event.target, event.target_access)):
                args = _access_args(
                    acc.interval.lo, acc.interval.hi, acc.type.name,
                    acc.debug.filename, acc.debug.line, acc.origin)
                builder.access(pid, event.seq,
                               _access_name(args, op, event.target), args)
                if event.target == event.rank:
                    break  # self-targeted op: one track, one event
        elif hasattr(event, "access"):
            acc = event.access
            args = _access_args(
                acc.interval.lo, acc.interval.hi, acc.type.name,
                acc.debug.filename, acc.debug.line, acc.origin)
            builder.access(event.rank, event.seq,
                           _access_name(args, None, -1), args)
        else:
            kind = getattr(event.kind, "value", str(event.kind))
            builder.sync(kind, event.rank, event.wid, event.seq, lanes)
    return builder.finish()


def chrome_events_from_timeline(snap: Optional[dict]) -> List[dict]:
    """Chrome events from a ``repro-timeline-v1`` snapshot.

    Each lane is one rank's bounded ring: sync events were replicated
    per lane at record time, so they apply only to their own lane here.
    Duplicate (lane, seq) sync replicas collapse to per-lane events.
    """
    builder = ChromeTraceBuilder()
    if not snap:
        return builder.finish()
    for lane_key in sorted(snap.get("lanes", {}), key=int):
        lane = int(lane_key)
        for event in snap["lanes"][lane_key]:
            kind = event["kind"]
            ts = event["seq"]
            if kind in ("rma", "local"):
                op = event.get("op")
                args = _access_args(
                    event["lo"], event["hi"], event["type"],
                    event["file"], event["line"], event["origin"])
                builder.access(lane, ts,
                               _access_name(args, op,
                                            event.get("target", -1)),
                               args)
            else:
                rank = event.get("rank", -1)
                if (kind in ("lock_all", "unlock_all", "flush",
                             "flush_all") and rank not in (lane, -1)):
                    continue  # another rank's epoch/flush, not this track
                builder.sync(kind, lane, event.get("wid", -1), ts,
                             (lane,))
    return builder.finish()


def race_instants(verdicts: Iterable[dict], ts: int) -> List[dict]:
    """Global instant events naming each race pair (drawn after the end)."""
    out = []
    for i, verdict in enumerate(verdicts):
        stored, new = verdict["stored"], verdict["new"]
        out.append({
            "ph": "i", "cat": "race", "s": "g",
            "name": (f"RACE: {new['type']} {new['file']}:{new['line']} "
                     f"vs {stored['type']} "
                     f"{stored['file']}:{stored['line']}"),
            "ts": ts + i, "pid": verdict["rank"], "tid": ACCESS_TID,
            "args": {"stored": dict(stored), "new": dict(new),
                     "window": verdict["window"]},
        })
    return out


def write_chrome_trace(path, events: List[dict],
                       verdicts: Iterable[dict] = ()) -> int:
    """Write events (+ race overlays) as one JSON array; returns count."""
    events = list(events)
    max_ts = max((e["ts"] for e in events if "ts" in e), default=0)
    events.extend(race_instants(verdicts, max_ts + 1))
    with open(path, "w") as fh:
        fh.write("[\n")
        for i, event in enumerate(events):
            fh.write(json.dumps(event, sort_keys=True))
            fh.write(",\n" if i + 1 < len(events) else "\n")
        fh.write("]\n")
    return len(events)


def validate_chrome_trace(events) -> List[str]:
    """Structural check of a trace-event list; returns problems (empty=ok).

    Checks what the viewers actually require: the event list is a JSON
    array of objects; every non-metadata event has ``ph``/``ts``/``pid``
    /``tid``; timestamps never go backwards within one (pid, tid)
    track; every ``E`` has a matching open ``B`` on its track.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return [f"top-level JSON must be an array, got {type(events).__name__}"]
    last_ts: Dict[Tuple[int, int], float] = {}
    depth: Dict[Tuple[int, int], int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing {missing}")
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {track}")
        last_ts[track] = ts
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) < 1:
                problems.append(
                    f"event {i}: E without open B on track {track}")
            else:
                depth[track] -= 1
    for track, d in sorted(depth.items()):
        if d:
            problems.append(f"track {track}: {d} unclosed B event(s)")
    return problems


def _main(argv: List[str]) -> int:  # pragma: no cover - exercised via CLI
    if len(argv) != 1:
        print("usage: python -m repro.obs.chrometrace TRACE.json")
        return 2
    with open(argv[0]) as fh:
        try:
            events = json.load(fh)
        except json.JSONDecodeError as exc:
            print(f"{argv[0]}: not valid JSON: {exc}")
            return 1
    problems = validate_chrome_trace(events)
    for problem in problems:
        print(f"{argv[0]}: {problem}")
    n = sum(1 for e in events
            if isinstance(e, dict) and e.get("ph") != "M")
    print(f"{argv[0]}: {'INVALID' if problems else 'ok'} "
          f"({n} events, {len(problems)} problem(s))")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    raise SystemExit(_main(sys.argv[1:]))

"""repro.obs — zero-dependency observability: metrics, spans, export.

One :class:`~repro.obs.registry.Registry` is active per process at any
time; instrumented code reaches it through :func:`active` (a module
global — no locks, registries are per-process by construction).  The
usual patterns::

    from repro import obs

    obs.add("pipeline.retries")                  # cold-path counter
    events = obs.counter("detector.events")      # hot-path handle
    events.inc()

    with obs.span("analyze"):                    # nesting time tree
        with obs.span("read"):
            ...

    reg = obs.active()                           # per-event phase timing
    if reg.enabled:
        t0 = perf_counter_ns()
        ...
        reg.phase_ns("fragment", perf_counter_ns() - t0)

    snap = obs.snapshot()                        # JSON-able state

Scoping: :func:`scope` swaps in a fresh registry for one analysis run
and folds its snapshot back into the enclosing registry on exit — this
is how ``repro analyze`` reports per-run metrics while ``repro run``
accumulates across experiments.  The ``REPRO_OBS=off`` environment
switch turns every instrument into a shared no-op (see
:mod:`repro.obs.registry`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .export import render_metrics, snapshot_to_json
from .registry import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    SpanNode,
    env_enabled,
    metric_key,
    sample_period_from_env,
)
from .timeline import (
    NULL_TIMELINE,
    NullTimeline,
    Timeline,
    record_trace_event,
    timeline_context,
)

__all__ = [
    "BUCKET_BOUNDS",
    "NULL_TIMELINE",
    "NullTimeline",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanNode",
    "Timeline",
    "active",
    "add",
    "counter",
    "env_enabled",
    "gauge",
    "histogram",
    "metric_key",
    "record_trace_event",
    "render_metrics",
    "reset",
    "sample_period_from_env",
    "scope",
    "set_registry",
    "snapshot",
    "snapshot_to_json",
    "span",
    "timeline",
    "timeline_context",
]

#: the process-wide default registry — what every thread sees unless it
#: scoped its own (below)
_default = Registry()

#: per-thread registry override.  ``repro serve`` multiplexes concurrent
#: analyses over worker *threads*, each running under its own
#: ``obs.scope()``; a single process global would let those scopes race
#: each other's swap/restore and misattribute metrics across jobs.
_tls = threading.local()


def active() -> Registry:
    """The calling thread's active registry (its scope, else the default)."""
    reg = getattr(_tls, "registry", None)
    return reg if reg is not None else _default


def set_registry(reg: Registry) -> Registry:
    """Swap the active registry; returns the previous one.

    On the main thread this replaces the *process default* (the
    historical single-global behavior every existing caller relies on);
    on any other thread it installs a thread-local override, so
    concurrent scopes cannot clobber each other.
    """
    global _default
    prev = active()
    if threading.current_thread() is threading.main_thread():
        _default = reg
        _tls.registry = None
    else:
        _tls.registry = reg
    return prev


def reset(*, enabled: Optional[bool] = None) -> Registry:
    """Fresh active registry (pipeline workers call this after fork)."""
    set_registry(Registry(enabled=enabled))
    return active()


@contextmanager
def scope(reg: Optional[Registry] = None, *,
          merge: bool = True) -> Iterator[Registry]:
    """Run a block under a fresh (or given) registry.

    On exit the scope's snapshot is merged into the enclosing registry
    (``merge=False`` discards it instead), so scoped runs stay visible
    to a caller accumulating globally.
    """
    inner = reg if reg is not None else Registry(enabled=active().enabled)
    outer = set_registry(inner)
    try:
        yield inner
    finally:
        set_registry(outer)
        if merge and outer.enabled and inner.enabled:
            outer.merge(inner.snapshot())
            if inner.timeline.enabled:
                outer.timeline.absorb(inner.timeline)


# -- conveniences on the active registry ------------------------------------


def counter(name: str, **labels: str) -> Counter:
    return active().counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return active().gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    return active().histogram(name, **labels)


def add(name: str, n: int = 1) -> None:
    active().counter(name).add(n)


def span(name: str):
    return active().span(name)


def timeline() -> Timeline:
    """The active registry's event timeline (null when disabled)."""
    return active().timeline


def snapshot() -> dict:
    return active().snapshot()

"""Bounded per-rank event timelines — the forensics half of ``repro.obs``.

A :class:`Timeline` keeps one fixed-size ring buffer ("lane") per
*memory rank*, fed with the same projection the sharded pipeline uses
for routing (:func:`repro.pipeline.shard.shards_of`):

* a local access of rank ``r`` lands in lane ``r``;
* an RMA operation lands in the lanes of **both** its origin and its
  target (each lane records the access that concerns *that* rank's
  memory side);
* synchronization events (epochs, fences, flushes, barriers, window
  create/free) order everything and are replicated into every lane.

Feeding by that rule is what makes forensics deterministic across the
sharded pipeline: a worker that owns shard ``r`` sees exactly the
events whose projection includes ``r``, in global trace order, so its
lane ``r`` is byte-for-byte the lane a serial replay builds — the
property the forensics parity tests pin down.

Design constraints mirror the registry's:

* **Cheap.**  The replay feed (:meth:`Timeline.record_event`) appends
  the trace-event object itself — zero per-event allocation; the live
  feed (:meth:`Timeline.record`) is one tuple construction and a
  ``deque.append``.  Payloads are held by reference and only formatted
  at :meth:`snapshot`/:meth:`lane_events` time, never on the hot path.
* **Bounded.**  Each lane is a ``deque(maxlen=cap)``; an arbitrarily
  long run costs ``O(ranks * cap)`` memory, nothing more.
* **A hard off switch.**  ``REPRO_OBS_TIMELINE=off`` (or
  ``REPRO_OBS=off``) swaps in the shared :data:`NULL_TIMELINE` whose
  ``record`` is a no-op; ``REPRO_OBS_TIMELINE=<n>`` resizes the ring.

This module deliberately imports nothing from the rest of ``repro`` —
the registry embeds a timeline per process, and the event adapters
below duck-type the trace-event classes instead of importing them.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = [
    "DEFAULT_CAP",
    "NULL_TIMELINE",
    "NullTimeline",
    "Timeline",
    "TIMELINE_SCHEMA",
    "record_trace_event",
    "record_trace_event_fanout",
    "timeline_cap_from_env",
    "timeline_context",
]

TIMELINE_SCHEMA = "repro-timeline-v1"

#: default events retained per lane when ``REPRO_OBS_TIMELINE`` is unset
DEFAULT_CAP = 128

#: event kinds that open (or re-open) an access epoch — the "enclosing
#: epoch" markers :func:`timeline_context` promotes into a rank's view
#: even when they have scrolled past the K most recent events
_EPOCH_KINDS = ("lock_all", "fence")

_warned_values: set = set()


def timeline_cap_from_env(default: int = DEFAULT_CAP) -> int:
    """Ring capacity from ``REPRO_OBS_TIMELINE``: off -> 0, on/int -> cap.

    Invalid values warn once per distinct value and fall back to the
    default rather than failing the run.
    """
    raw = os.environ.get("REPRO_OBS_TIMELINE")
    if raw is None:
        return default
    text = raw.strip().lower()
    if text in ("off", "0", "false", "no", "disabled"):
        return 0
    if text in ("", "on", "true", "yes", "enabled", "default"):
        return default
    try:
        cap = int(text)
    except ValueError:
        cap = -1
    if cap < 1:
        if raw not in _warned_values:  # pragma: no branch
            _warned_values.add(raw)
            warnings.warn(
                f"REPRO_OBS_TIMELINE={raw!r} is neither on/off nor a "
                f"positive ring size; using {default}",
                RuntimeWarning, stacklevel=2,
            )
        return default
    return cap


def make_timeline(*, enabled: bool = True,
                  cap: Optional[int] = None) -> "Timeline":
    """The timeline for one registry: null when obs or the knob is off."""
    if not enabled:
        return NULL_TIMELINE
    if cap is None:
        cap = timeline_cap_from_env()
    if cap <= 0:
        return NULL_TIMELINE
    return Timeline(cap)


def _fmt(rec, lane: int) -> dict:
    """One ring record -> a stable JSON-able event dict.

    Ring records are ``(seq, kind, rank, wid, payload)`` tuples
    (recorded live), replayed trace-event objects held by reference
    (see :meth:`Timeline.record_event`), or already-formatted dicts
    (merged from a worker snapshot).  ``lane`` picks the RMA side a
    replayed event shows: the target access on the target rank's lane,
    the origin access elsewhere.  Payloads and accesses duck-type
    :class:`~repro.intervals.MemoryAccess`.
    """
    if isinstance(rec, dict):
        return rec
    if isinstance(rec, tuple):
        seq, kind, rank, wid, payload = rec
        if payload is None:
            return {"seq": seq, "kind": kind, "rank": rank, "wid": wid}
        op, target, acc = payload
        interval, debug = acc.interval, acc.debug
        event = {"seq": seq, "kind": kind, "rank": rank, "wid": wid}
        if op is not None:
            event["op"] = op
            event["target"] = target
        event["lo"] = interval.lo
        event["hi"] = interval.hi
        event["type"] = acc.type.name
        event["file"] = debug.filename
        event["line"] = debug.line
        event["origin"] = acc.origin
        return event
    kind = _classify(rec)
    if kind == "sync":
        sync = getattr(rec.kind, "value", None) or str(rec.kind)
        return {"seq": rec.seq, "kind": sync, "rank": rec.rank,
                "wid": rec.wid}
    if kind == "rma":
        acc = (rec.target_access if lane == rec.target
               else rec.origin_access)
        head = {"seq": rec.seq, "kind": "rma", "rank": rec.rank,
                "wid": rec.wid, "op": rec.op, "target": rec.target}
    else:
        acc = rec.access
        head = {"seq": rec.seq, "kind": "local", "rank": rec.rank,
                "wid": -1}
    interval, debug = acc.interval, acc.debug
    head["lo"] = interval.lo
    head["hi"] = interval.hi
    head["type"] = acc.type.name
    head["file"] = debug.filename
    head["line"] = debug.line
    head["origin"] = acc.origin
    return head


def _seq_of(rec) -> int:
    if isinstance(rec, dict):
        return rec["seq"]
    if isinstance(rec, tuple):
        return rec[0]
    return rec.seq


class Timeline:
    """Per-rank bounded event history (see module docstring)."""

    __slots__ = ("cap", "_lanes", "_autoseq")

    #: hot-path guard, mirroring ``Registry.enabled``
    enabled = True

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        if cap < 1:
            raise ValueError("timeline cap must be positive")
        self.cap = cap
        self._lanes: Dict[int, deque] = {}
        self._autoseq = 0

    # -- recording ----------------------------------------------------------

    def record(self, lane: int, kind: str, rank: int, wid: int = -1,
               payload=None, seq: Optional[int] = None) -> None:
        """Append one event to ``lane`` (cheap: tuple + deque append).

        ``seq`` is the global trace sequence number when replaying a
        recorded trace; live feeders leave it ``None`` and get a
        timeline-local monotonic sequence instead.  ``payload`` is
        ``None`` for sync events and ``(op_or_None, target, access)``
        for accesses — formatted lazily at snapshot time.
        """
        if seq is None:
            self._autoseq += 1
            seq = self._autoseq
        ring = self._lanes.get(lane)
        if ring is None:
            ring = self._lanes[lane] = deque(maxlen=self.cap)
        ring.append((seq, kind, rank, wid, payload))

    def record_sync(self, kind: str, rank: int, wid: int,
                    lanes: Iterable[int], seq: Optional[int] = None) -> None:
        """Replicate one synchronization event into every given lane.

        One shared record tuple is appended to every ring — sync events
        replicate to all lanes, so this is the feed path's hottest
        multi-lane call and stays a single allocation.
        """
        if seq is None:
            self._autoseq += 1
            seq = self._autoseq
        rec = (seq, kind, rank, wid, None)
        lanes_map = self._lanes
        cap = self.cap
        for lane in lanes:
            ring = lanes_map.get(lane)
            if ring is None:
                ring = lanes_map[lane] = deque(maxlen=cap)
            ring.append(rec)

    def record_rma(self, op: str, rank: int, target: int, wid: int,
                   origin_access, target_access,
                   seq: Optional[int] = None) -> None:
        """One RMA op into both sides' lanes, sharing one sequence number.

        Each lane records the access on *its* memory side: the origin
        lane the origin-buffer access, the target lane the
        window-memory access.  A self-targeted op records the window
        (target) side — the same side a replayed lane records.
        """
        if seq is None:
            self._autoseq += 1
            seq = self._autoseq
        lanes_map = self._lanes
        cap = self.cap
        if target == rank:
            sides = ((rank, target_access),)
        else:
            sides = ((rank, origin_access), (target, target_access))
        for lane, acc in sides:
            ring = lanes_map.get(lane)
            if ring is None:
                ring = lanes_map[lane] = deque(maxlen=cap)
            ring.append((seq, "rma", rank, wid, (op, target, acc)))

    def record_event(self, lane: int, event) -> None:
        """Append one *replayed* trace event to ``lane``, by reference.

        The replay feed's fast path: no per-event allocation at all —
        the event object itself is the ring record, and the lane-side
        view (which access of an RMA op, the sync kind string) is
        derived at format time because the lane is known then.
        """
        ring = self._lanes.get(lane)
        if ring is None:
            ring = self._lanes[lane] = deque(maxlen=self.cap)
        ring.append(event)

    def record_event_fanout(self, event, nranks: int) -> None:
        """Append one replayed event to every lane its projection hits.

        The single-call serial-path twin of calling
        :meth:`record_event` once per ``shards_of(event)`` shard: a
        local access lands in its rank's lane, an RMA op in both sides'
        lanes, a sync event in all ``nranks`` lanes — byte-for-byte the
        lanes the sharded workers build.
        """
        kind = _EVENT_KIND.get(event.__class__)
        if kind is None:
            kind = _classify(event)
        lanes_map = self._lanes
        if kind == "local":
            lane = event.rank
            ring = lanes_map.get(lane)
            if ring is None:
                ring = lanes_map[lane] = deque(maxlen=self.cap)
            ring.append(event)
            return
        if kind == "rma":
            rank, target = event.rank, event.target
            lanes = (rank,) if target == rank else (rank, target)
        else:
            lanes = range(nranks)
        cap = self.cap
        for lane in lanes:
            ring = lanes_map.get(lane)
            if ring is None:
                ring = lanes_map[lane] = deque(maxlen=cap)
            ring.append(event)

    # -- reading ------------------------------------------------------------

    def lanes(self) -> List[int]:
        return sorted(self._lanes)

    def lane_events(self, lane: int) -> List[dict]:
        """The lane's retained events, oldest first, formatted."""
        ring = self._lanes.get(lane)
        if ring is None:
            return []
        return [_fmt(rec, lane) for rec in ring]

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._lanes.values())

    # -- lifecycle / snapshot / merge ---------------------------------------

    def clear(self) -> None:
        self._lanes.clear()
        self._autoseq = 0

    def snapshot(self) -> dict:
        """Stable JSON-able dump (schema :data:`TIMELINE_SCHEMA`)."""
        return {
            "schema": TIMELINE_SCHEMA,
            "cap": self.cap,
            "lanes": {
                str(lane): self.lane_events(lane) for lane in self.lanes()
            },
        }

    def absorb(self, other: "Timeline") -> None:
        """Fold another timeline's rings in, raw — no formatting round-trip.

        The scope-exit twin of ``merge(other.snapshot())``: records move
        as the tuples they were appended as, skipping the per-event
        dict formatting a snapshot pays.
        """
        lanes_map = self._lanes
        cap = self.cap
        for lane, ring in other._lanes.items():
            mine = lanes_map.get(lane)
            if mine is None:
                lanes_map[lane] = deque(ring, maxlen=cap)
                continue
            items = sorted(list(mine) + list(ring), key=_seq_of)
            mine.clear()
            mine.extend(items[-cap:])

    def merge(self, snap: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` dict into this timeline.

        Lanes concatenate, re-sort by sequence number, and trim back to
        the ring capacity — in the sharded pipeline each lane is
        produced by exactly one worker, so this is a plain union.
        """
        if not snap:
            return
        for lane_key, events in snap.get("lanes", {}).items():
            if not events:
                continue
            lane = int(lane_key)
            ring = self._lanes.get(lane)
            if ring is None:
                ring = self._lanes[lane] = deque(maxlen=self.cap)
            items = sorted(list(ring) + list(events), key=_seq_of)
            ring.clear()
            ring.extend(items[-self.cap:])


class NullTimeline(Timeline):
    """Shared no-op timeline (``REPRO_OBS_TIMELINE=off`` / obs off)."""

    __slots__ = ()

    enabled = False

    def __init__(self) -> None:
        super().__init__(1)
        self.cap = 0

    def record(self, lane, kind, rank, wid=-1, payload=None,
               seq=None) -> None:
        pass

    def record_sync(self, kind, rank, wid, lanes, seq=None) -> None:
        pass

    def record_rma(self, op, rank, target, wid, origin_access,
                   target_access, seq=None) -> None:
        pass

    def record_event(self, lane, event) -> None:
        pass

    def record_event_fanout(self, event, nranks) -> None:
        pass

    def absorb(self, other) -> None:
        pass

    def merge(self, snap) -> None:
        pass


NULL_TIMELINE = NullTimeline()


# -- adapters ----------------------------------------------------------------

#: event class -> "rma" | "local" | "sync"; attribute probing costs an
#: internal AttributeError per miss, so classify each event class once
_EVENT_KIND: Dict[type, str] = {}


def _classify(event) -> str:
    """Duck-typed event classification, cached per event class.

    ``op`` marks an RMA event, ``access`` a local one, anything else a
    sync event — the :mod:`repro.mpi.trace` shapes, probed without
    importing them so this module stays import-free.
    """
    cls = event.__class__
    kind = _EVENT_KIND.get(cls)
    if kind is None:
        if hasattr(event, "op"):
            kind = "rma"
        elif hasattr(event, "access"):
            kind = "local"
        else:
            kind = "sync"
        _EVENT_KIND[cls] = kind
    return kind


def record_trace_event(tl: Timeline, event, lane: int) -> None:
    """Record one replayed trace event into ``lane``.

    For RMA events the lane shows the access on *its* side of the
    operation: the target access when the lane is the target rank, the
    origin access otherwise (derived at format time).
    """
    tl.record_event(lane, event)


def record_trace_event_fanout(tl: Timeline, event, nranks: int) -> None:
    """Record one replayed event into every lane its projection hits."""
    tl.record_event_fanout(event, nranks)


def timeline_context(tl: Timeline, lane: int, ranks: Iterable[int],
                     k: int = 8) -> dict:
    """Per-rank context views around "now" in one lane, for forensics.

    For each rank the view is its last ``k`` events in the lane (its own
    accesses/epochs plus whole-world sync), and the most recent
    epoch-opening event (``lock_all``/``fence``) still in the ring is
    promoted into the view even when it is older than ``k`` — the
    "enclosing epoch" a race diagnostic must show.
    """
    ring = tl._lanes.get(lane)
    records = list(ring) if ring else []
    n = len(records)
    views: Dict[str, List[dict]] = {}
    for rank in ranks:
        # reverse scan with early exit: resolve only the record's rank
        # until it matches (most records belong to other ranks), then
        # its kind; stop as soon as k events and the enclosing epoch
        # are in hand — formats just the records that end up in the view
        picked: List[int] = []
        epoch = None
        need_epoch = True
        for i in range(n - 1, -1, -1):
            rec = records[i]
            cls = rec.__class__
            if cls is tuple:
                rec_rank = rec[2]
            elif cls is dict:
                rec_rank = rec["rank"]
            else:
                rec_rank = rec.rank
            if rec_rank != rank and rec_rank != -1:
                continue
            if cls is tuple:
                kind = rec[1]
            elif cls is dict:
                kind = rec["kind"]
            else:
                kind = _EVENT_KIND.get(cls)
                if kind is None:
                    kind = _classify(rec)
                if kind == "sync":
                    kind = getattr(rec.kind, "value", None) or str(rec.kind)
            if len(picked) < k:
                picked.append(i)
                if kind in _EPOCH_KINDS:
                    need_epoch = False
            elif need_epoch:
                if kind in _EPOCH_KINDS:
                    epoch = i
                    break
            else:
                break
        view = [_fmt(records[i], lane) for i in reversed(picked)]
        if epoch is not None:
            view = [_fmt(records[epoch], lane)] + view
        views[str(rank)] = view
    return {"lane": lane, "cap": tl.cap, "k": k, "views": views}

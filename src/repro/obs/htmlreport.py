"""Self-contained HTML race report (zero dependencies, inline CSS/JS).

``render_html_report`` turns one analysis report dict (the
:meth:`repro.pipeline.PipelineResult.to_dict` shape) into a single HTML
file a browser opens directly — no external assets, no build step, safe
to attach to a CI run:

* a summary header (trace, detector, throughput, race count),
* one **race card** per verdict with the Fig. 9b message, both source
  locations, and — when forensics were captured — the surrounding
  per-rank event timeline in a ``<details>`` fold,
* an **SVG lane diagram**: one horizontal lane per rank fed from the
  ``repro-timeline-v1`` snapshot, every retained access drawn at its
  trace-sequence position, epoch boundaries ticked, and the accesses
  belonging to a detected race pair highlighted (the "colliding
  intervals").

Everything user-controlled (file names, interval bounds, access types)
is HTML-escaped.  The only script is a dozen lines toggling highlights.
"""

from __future__ import annotations

import html
import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["render_html_report"]

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 960px; color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
code { background: #eef; padding: 0 .25em; border-radius: 3px; }
table.meta td { padding: .1em .8em .1em 0; }
.race-card { border: 1px solid #d33; border-left: 6px solid #d33;
             background: #fff; border-radius: 4px; padding: .8em 1em;
             margin: 1em 0; }
.race-card .msg { color: #a00; font-weight: 600; }
.race-card table { border-collapse: collapse; margin: .6em 0; }
.race-card th, .race-card td { border: 1px solid #ccc;
             padding: .25em .6em; text-align: left; font-size: .92em; }
.ok { color: #080; font-weight: 600; }
details { margin-top: .5em; }
details pre { background: #f4f4f8; padding: .6em; overflow-x: auto;
              font-size: .85em; }
svg .lane-label { font: 12px monospace; fill: #444; }
svg .acc { fill: #4a7fd4; } svg .acc.write { fill: #e0862c; }
svg .acc.race { fill: #d32; stroke: #900; stroke-width: 2; }
svg .sync { stroke: #aaa; stroke-width: 1; }
svg .epoch { stroke: #7b5; stroke-width: 2; }
svg rect:hover { opacity: .7; cursor: pointer; }
.legend span { margin-right: 1.4em; }
.swatch { display: inline-block; width: .8em; height: .8em;
          border-radius: 2px; vertical-align: -1px; margin-right: .3em; }
"""

_JS = """
document.querySelectorAll('svg .acc.race').forEach(function (el) {
  el.addEventListener('click', function () {
    var card = document.getElementById('race-' + el.dataset.race);
    if (card) { card.scrollIntoView({behavior: 'smooth'});
                card.style.outline = '3px solid #d32';
                setTimeout(function () { card.style.outline = ''; }, 1200); }
  });
});
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _access_key(acc: dict) -> Tuple:
    return (acc.get("lo"), acc.get("hi"), acc.get("type"),
            acc.get("file"), acc.get("line"))


def _race_keys(verdicts: Iterable[dict]) -> Dict[Tuple, int]:
    """Racing access -> index of the verdict it belongs to."""
    keys: Dict[Tuple, int] = {}
    for i, verdict in enumerate(verdicts):
        for side in ("stored", "new"):
            keys.setdefault(_access_key(verdict[side]), i)
    return keys


def _access_row(label: str, acc: dict) -> str:
    return (
        f"<tr><td>{_esc(label)}</td><td><code>{_esc(acc['type'])}</code>"
        f"</td><td>[{_esc(acc['lo'])}, {_esc(acc['hi'])}]</td>"
        f"<td>rank {_esc(acc['origin'])}</td>"
        f"<td><code>{_esc(acc['file'])}:{_esc(acc['line'])}</code></td>"
        f"</tr>"
    )


def _race_card(i: int, verdict: dict, bundle: Optional[dict]) -> str:
    stored, new = verdict["stored"], verdict["new"]
    msg = (
        f"Error when inserting memory access of type {new['type']} from "
        f"file {new['file']}:{new['line']} with already inserted interval "
        f"of type {stored['type']} from file "
        f"{stored['file']}:{stored['line']}."
    )
    parts = [f'<div class="race-card" id="race-{i}">']
    parts.append(
        f"<div class='msg'>race {i}: window {_esc(verdict['window'])}, "
        f"memory rank {_esc(verdict['rank'])}</div>"
    )
    parts.append(f"<p>{_esc(msg)}</p>")
    parts.append("<table><tr><th></th><th>type</th><th>interval</th>"
                 "<th>issuer</th><th>source</th></tr>")
    parts.append(_access_row("stored", stored))
    parts.append(_access_row("new", new))
    parts.append("</table>")
    if bundle:
        parts.append(
            f"<div>flagged by <code>{_esc(bundle['detector'])}</code> in "
            f"phase <code>{_esc(bundle['phase'])}</code></div>"
        )
        sync = bundle.get("sync") or {}
        if sync.get("open_epochs") is not None:
            parts.append(
                f"<div>open epochs on window: ranks "
                f"{_esc(sync['open_epochs'])}</div>"
            )
        views = (bundle.get("timeline") or {}).get("views", {})
        if views:
            parts.append("<details><summary>surrounding timeline "
                         "events</summary><pre>")
            for rank_key in sorted(views, key=int):
                parts.append(f"rank {_esc(rank_key)}:")
                for event in views[rank_key]:
                    parts.append("  " + _esc(json.dumps(event,
                                                        sort_keys=True)))
            parts.append("</pre></details>")
    parts.append("</div>")
    return "\n".join(parts)


def _svg_lanes(timeline: dict, race_keys: Dict[Tuple, int]) -> str:
    """One horizontal lane per rank; racing accesses highlighted."""
    lanes = timeline.get("lanes", {})
    if not lanes:
        return "<p>(no timeline recorded)</p>"
    seqs = [e["seq"] for events in lanes.values() for e in events]
    if not seqs:
        return "<p>(timeline empty)</p>"
    lo_seq, hi_seq = min(seqs), max(seqs)
    span = max(1, hi_seq - lo_seq)
    width, lane_h, left = 900, 34, 80
    plot_w = width - left - 20

    def x_of(seq: int) -> float:
        return left + plot_w * (seq - lo_seq) / span

    rows: List[str] = []
    lane_ids = sorted(lanes, key=int)
    height = lane_h * len(lane_ids) + 30
    rows.append(
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg">'
    )
    for row, lane_key in enumerate(lane_ids):
        y = 20 + row * lane_h
        rows.append(
            f'<text class="lane-label" x="8" y="{y + 14}">'
            f"rank {_esc(lane_key)}</text>"
        )
        rows.append(
            f'<line class="sync" x1="{left}" y1="{y + 20}" '
            f'x2="{width - 20}" y2="{y + 20}" />'
        )
        for event in lanes[lane_key]:
            x = x_of(event["seq"])
            kind = event["kind"]
            if kind in ("rma", "local"):
                key = _access_key(event)
                race_i = race_keys.get(key)
                cls = "acc"
                if event.get("type", "").endswith("WRITE") or \
                        event.get("type") == "STORE":
                    cls += " write"
                extra = ""
                if race_i is not None:
                    cls += " race"
                    extra = f' data-race="{race_i}"'
                tip = (f"seq {event['seq']}: {kind} "
                       f"[{event.get('lo')}, {event.get('hi')}] "
                       f"{event.get('type')} "
                       f"{event.get('file')}:{event.get('line')}")
                rows.append(
                    f'<rect class="{cls}"{extra} x="{x - 3:.1f}" '
                    f'y="{y + 6}" width="7" height="14" rx="1">'
                    f"<title>{_esc(tip)}</title></rect>"
                )
            else:
                cls = "epoch" if kind in ("lock_all", "unlock_all",
                                          "fence") else "sync"
                tip = f"seq {event['seq']}: {kind} (rank {event['rank']})"
                rows.append(
                    f'<line class="{cls}" x1="{x:.1f}" y1="{y + 2}" '
                    f'x2="{x:.1f}" y2="{y + 30}">'
                    f"<title>{_esc(tip)}</title></line>"
                )
    rows.append("</svg>")
    rows.append(
        '<p class="legend">'
        '<span><span class="swatch" style="background:#4a7fd4"></span>'
        "read access</span>"
        '<span><span class="swatch" style="background:#e0862c"></span>'
        "write access</span>"
        '<span><span class="swatch" style="background:#d32"></span>'
        "racing access (click to jump)</span>"
        '<span><span class="swatch" style="background:#7b5"></span>'
        "epoch boundary</span></p>"
    )
    return "\n".join(rows)


def render_html_report(report: dict, *,
                       title: str = "repro race report") -> str:
    """The full standalone HTML document for one analysis report."""
    verdicts = report.get("verdicts", [])
    forensics = report.get("forensics", []) or []
    by_key = {
        (b["rank"], b["window"], _access_key(b["stored"]),
         _access_key(b["new"])): b
        for b in forensics
    }
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append(f"<html lang='en'><head><meta charset='utf-8'>"
                 f"<title>{_esc(title)}</title>"
                 f"<style>{_CSS}</style></head><body>")
    parts.append(f"<h1>{_esc(title)}</h1>")
    parts.append("<table class='meta'>")
    for label, key in (("detector", "detector"), ("ranks", "nranks"),
                       ("events", "events_total"), ("jobs", "jobs"),
                       ("dispatch", "dispatch")):
        if key in report:
            parts.append(f"<tr><td>{label}</td>"
                         f"<td><b>{_esc(report[key])}</b></td></tr>")
    parts.append("</table>")

    n = len(verdicts)
    if n:
        parts.append(f"<h2>{n} race{'s' if n != 1 else ''} detected</h2>")
        for i, verdict in enumerate(verdicts):
            bundle = by_key.get(
                (verdict["rank"], verdict["window"],
                 _access_key(verdict["stored"]),
                 _access_key(verdict["new"])))
            parts.append(_race_card(i, verdict, bundle))
    else:
        parts.append("<h2 class='ok'>no races detected</h2>")

    timeline = report.get("timeline")
    if timeline:
        parts.append("<h2>per-rank timeline</h2>")
        parts.append(_svg_lanes(timeline, _race_keys(verdicts)))
    parts.append(f"<script>{_JS}</script>")
    parts.append("</body></html>")
    return "\n".join(parts)

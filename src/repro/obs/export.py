"""Export surfaces for registry snapshots: text table and JSON.

``render_metrics`` is what ``repro analyze --metrics`` / ``repro run
--metrics`` print; ``snapshot_to_json`` backs ``--metrics-json PATH``.
Both operate on the plain snapshot dict (not the live registry), so the
same code renders a merged pipeline snapshot shipped from workers.
"""

from __future__ import annotations

import json
from typing import List

from .registry import BUCKET_BOUNDS

__all__ = ["render_metrics", "snapshot_to_json", "span_rows"]


def snapshot_to_json(snap: dict, *, indent: int = 2) -> str:
    """Stable machine-readable dump (keys sorted, schema tag included)."""
    return json.dumps(snap, indent=indent, sort_keys=True)


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:,.2f}"


def span_rows(snap: dict) -> List[List[str]]:
    """(indented name, count, total ms, self ms) rows of the span tree."""

    rows: List[List[str]] = []

    def walk(node: dict, name: str, depth: int) -> None:
        children = node.get("children", {})
        child_ns = sum(c.get("total_ns", 0) for c in children.values())
        total = node.get("total_ns", 0)
        if name:
            rows.append([
                "  " * (depth - 1) + name,
                f"{node.get('count', 0):,}",
                _fmt_ms(total),
                _fmt_ms(max(0, total - child_ns)),
            ])
        for sub in sorted(children):
            walk(children[sub], sub, depth + 1)

    walk(snap.get("spans", {}), "", 0)
    return rows


def _histogram_summary(hv: dict) -> str:
    """``n=..., mean=..., max=...`` — the exact observed maximum.

    ``Histogram.observe`` tracks the true max, so wide buckets no
    longer produce a misleading upper-bound estimate.  Snapshots from
    older writers (no ``max`` key) fall back to the top occupied
    bucket's bound, marked ``max<=``.
    """
    n = hv.get("n", 0)
    if not n:
        return "n=0"
    mean = hv.get("total", 0) / n
    vmax = hv.get("max", 0)
    if vmax:
        return f"n={n:,} mean={mean:.2f} max={vmax:,}"
    top = 0
    for i, count in enumerate(hv.get("counts", [])):
        if count:
            top = i
    if top == 0:
        return f"n={n:,} mean={mean:.2f} max=0"
    # bucket i holds values of bit_length i: upper bound 2**i - ... use bound
    bound = BUCKET_BOUNDS[top] if top < len(BUCKET_BOUNDS) else BUCKET_BOUNDS[-1]
    return f"n={n:,} mean={mean:.2f} max<={bound:,}"


def render_metrics(snap: dict) -> str:
    """Human-readable table of one snapshot (counters/gauges/hist/spans)."""
    from ..experiments.tables import render_table

    sections: List[str] = []
    counters = snap.get("counters", {})
    if counters:
        rows = [[k, f"{v:,}"] for k, v in sorted(counters.items())]
        sections.append("counters\n" + render_table(["name", "value"], rows))
    gauges = snap.get("gauges", {})
    if gauges:
        rows = [
            [k, f"{g['value']:,}", f"{g['peak']:,}"]
            for k, g in sorted(gauges.items())
        ]
        sections.append("gauges\n" + render_table(["name", "value", "peak"],
                                                  rows))
    hists = snap.get("histograms", {})
    if hists:
        rows = [[k, _histogram_summary(h)] for k, h in sorted(hists.items())]
        sections.append("histograms\n"
                        + render_table(["name", "distribution"], rows))
    spans = span_rows(snap)
    if spans:
        sections.append("spans\n" + render_table(
            ["span", "count", "total ms", "self ms"], spans))
    if not sections:
        return "(no metrics recorded — is REPRO_OBS=off?)"
    return "\n\n".join(sections)

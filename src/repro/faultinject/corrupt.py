"""Deterministic on-disk trace corruptors, framed like the reader reads.

These walk the ``repro-trace-v2`` chunk framing of a *written* trace
and damage it surgically: flip payload bytes of one chunk (caught by
the chunk checksum), truncate the file mid-chunk (a recorder that died
with the trailer unwritten), or smash a frame tag (exercises the
salvage resync scan).  All randomness is seeded, so every chaos test
reproduces byte-identical damage.
"""

from __future__ import annotations

import json
import random
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from ..mpi.errors import TraceFormatError
from ..pipeline.format import MAGIC_V2

__all__ = [
    "ChunkInfo",
    "chunk_index",
    "corrupt_chunk_tag",
    "corrupt_checkpoint",
    "corrupt_journal_record",
    "flip_bytes",
    "truncate_mid_chunk",
]

_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class ChunkInfo:
    """Where one chunk of a v2 trace lives on disk."""

    chunk: int        #: 1-based chunk number, as the reader counts them
    frame_pos: int    #: offset of the b"CHNK" tag
    payload_pos: int  #: offset of the first payload byte
    nbytes: int       #: payload length
    nevents: int      #: events the frame claims


def chunk_index(path: Union[str, Path]) -> List[ChunkInfo]:
    """Walk a v2 file's framing and index its chunks."""
    path = Path(path)
    raw = path.read_bytes()
    if raw[:len(MAGIC_V2)] != MAGIC_V2:
        raise TraceFormatError("not a v2 trace (bad magic)", path=path)
    pos = len(MAGIC_V2)
    (hlen,) = _U32.unpack_from(raw, pos)
    header = json.loads(raw[pos + 4:pos + 4 + hlen])
    frame_size = 12 if header.get("chunk_crc32") else 8
    if header.get("chunk_chain"):
        frame_size += 32  # per-frame rolling chain digest
    pos += 4 + hlen
    chunks: List[ChunkInfo] = []
    while pos + 4 <= len(raw):
        tag = raw[pos:pos + 4]
        if tag == b"TEND":
            break
        if tag != b"CHNK":
            raise TraceFormatError(
                f"bad chunk tag {tag!r} at offset {pos}", path=path
            )
        nbytes, nevents = struct.unpack_from("<II", raw, pos + 4)
        chunks.append(ChunkInfo(
            chunk=len(chunks) + 1,
            frame_pos=pos,
            payload_pos=pos + 4 + frame_size,
            nbytes=nbytes,
            nevents=nevents,
        ))
        pos += 4 + frame_size + nbytes
    return chunks


def _chunk(path: Path, chunk: int) -> ChunkInfo:
    chunks = chunk_index(path)
    for info in chunks:
        if info.chunk == chunk:
            return info
    raise ValueError(f"{path} has {len(chunks)} chunks, no chunk {chunk}")


def flip_bytes(
    path: Union[str, Path],
    chunk: int,
    *,
    count: int = 4,
    seed: int = 0,
    xor: int = 0xFF,
) -> List[int]:
    """XOR ``count`` seeded-random payload bytes of ``chunk`` in place.

    The chunk checksum no longer matches afterwards, so a strict read
    raises and a salvage read quarantines exactly this chunk.  Returns
    the absolute file offsets flipped.
    """
    path = Path(path)
    info = _chunk(path, chunk)
    rng = random.Random(seed)
    offsets = sorted(
        info.payload_pos + o
        for o in rng.sample(range(info.nbytes), min(count, info.nbytes))
    )
    raw = bytearray(path.read_bytes())
    for off in offsets:
        raw[off] ^= xor
    path.write_bytes(bytes(raw))
    return offsets


def truncate_mid_chunk(
    path: Union[str, Path], chunk: int, *, keep_fraction: float = 0.5
) -> int:
    """Cut the file inside ``chunk``'s payload, trailer and all.

    Models a recorder killed mid-write (on a pre-atomic-finalize file
    layout).  Returns the new file size.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    info = _chunk(path, chunk)
    cut = info.payload_pos + int(info.nbytes * keep_fraction)
    raw = path.read_bytes()[:cut]
    path.write_bytes(raw)
    return len(raw)


def corrupt_checkpoint(
    path: Union[str, Path],
    *,
    mode: str = "flip",
    count: int = 4,
    seed: int = 0,
    keep_fraction: float = 0.5,
) -> Path:
    """Damage one ``repro-ckpt-v1`` file in place, deterministically.

    ``mode="flip"`` XORs ``count`` seeded-random payload bytes (the crc
    catches it on recovery); ``mode="truncate"`` cuts the file mid-
    payload (a checkpoint torn by a crash on a filesystem without
    atomic-rename semantics).  Either way recovery must quarantine the
    file and fall back to the previous generation — never silently
    restart from scratch.  Returns the path.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    # payload starts after magic(8) + u32 hlen + header + u32 len + u32 crc
    (hlen,) = _U32.unpack_from(raw, 8)
    payload_pos = 8 + 4 + hlen + 8
    nbytes = len(raw) - payload_pos
    if nbytes <= 0:
        raise ValueError(f"{path} has no checkpoint payload to corrupt")
    if mode == "flip":
        rng = random.Random(seed)
        for off in rng.sample(range(nbytes), min(count, nbytes)):
            raw[payload_pos + off] ^= 0xFF
        path.write_bytes(bytes(raw))
    elif mode == "truncate":
        cut = payload_pos + int(nbytes * keep_fraction)
        path.write_bytes(bytes(raw[:cut]))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


def corrupt_journal_record(
    path: Union[str, Path],
    record: int = 1,
    *,
    mode: str = "flip",
    count: int = 4,
    seed: int = 0,
) -> int:
    """Damage one record of a ``repro-jobs-v1`` daemon journal in place.

    ``record`` is 1-based.  ``mode="flip"`` XORs ``count`` seeded-random
    payload bytes (the record crc catches it on replay, which must
    quarantine the damaged suffix and keep the valid prefix);
    ``mode="truncate"`` cuts the file mid-record (the torn tail a crash
    during append leaves behind — replay trims it silently).  Returns
    the file offset of the damaged record's frame.
    """
    from ..serve.journal import JOURNAL_MAGIC

    path = Path(path)
    raw = bytearray(path.read_bytes())
    if raw[:len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise ValueError(f"{path} is not a repro-jobs-v1 journal")
    pos = len(JOURNAL_MAGIC)
    (hlen,) = _U32.unpack_from(raw, pos)
    pos += 4 + hlen
    seen = 0
    while pos + 8 <= len(raw):
        (nbytes,) = _U32.unpack_from(raw, pos)
        payload_pos = pos + 8
        if payload_pos + nbytes > len(raw):
            break
        seen += 1
        if seen == record:
            if mode == "flip":
                rng = random.Random(seed)
                for off in rng.sample(range(nbytes), min(count, nbytes)):
                    raw[payload_pos + off] ^= 0xFF
                path.write_bytes(bytes(raw))
            elif mode == "truncate":
                path.write_bytes(bytes(raw[:payload_pos + nbytes // 2]))
            else:
                raise ValueError(f"unknown corruption mode {mode!r}")
            return pos
        pos = payload_pos + nbytes
    raise ValueError(f"{path} has {seen} records, no record {record}")


def corrupt_chunk_tag(path: Union[str, Path], chunk: int) -> int:
    """Overwrite ``chunk``'s b"CHNK" tag with junk (breaks the framing).

    Strict reads die on the bad tag; salvage reads lose the chunk and
    resynchronize on the next frame tag.  Returns the tag's offset.
    """
    path = Path(path)
    info = _chunk(path, chunk)
    raw = bytearray(path.read_bytes())
    raw[info.frame_pos:info.frame_pos + 4] = b"JUNK"
    path.write_bytes(bytes(raw))
    return info.frame_pos

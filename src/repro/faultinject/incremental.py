"""Fault injectors for the incremental / live-append analysis paths.

Three failure families matter for ``--follow`` and serve's
prefix-resume, and each gets a deterministic injector:

* **Legitimate growth** — :func:`extend_trace` appends more chunks to a
  finished trace through the real append path
  (:meth:`~repro.pipeline.format.BinaryTraceWriter.open_append`), so
  the extension is byte-for-byte what a longer recording would have
  produced; :func:`append_mid_analysis` does the same from a background
  thread while an analysis is reading the file, which is the follow
  workflow's racy steady state.
* **Torn growth** — :func:`truncate_tail_mid_append` cuts the file in
  the middle of its newest chunk, the exact artifact of a recorder
  ``kill -9``'d mid-append.  Tail readers must classify it as
  in-progress (wait, don't quarantine); ``open_append`` must drop it
  and rewrite.
* **Rewritten history** — :func:`rewrite_prefix` flips payload bytes in
  an already-analyzed chunk and then *repairs* the file's own checksums
  and stored chain digests.  The result is a perfectly self-consistent
  trace that merely disagrees with its past — undetectable by per-chunk
  checksums, caught only by comparing against a retained chain cursor.
  Resume/follow must refuse it with a divergence error, never blend old
  verdicts with new history.

All randomness is seeded; every chaos run reproduces identical damage.
"""

from __future__ import annotations

import json
import random
import threading
import time
import zlib
from pathlib import Path
from typing import List, Optional, Union

from ..mpi.errors import TraceFormatError
from ..pipeline.format import (
    MAGIC_V2,
    BinaryTraceWriter,
    TraceReader,
    _chain_next,
    _chain_seed,
)
from .corrupt import _U32, chunk_index

__all__ = [
    "append_mid_analysis",
    "extend_trace",
    "rewrite_prefix",
    "truncate_tail_mid_append",
]


def _decoded_slice(path: Path, fraction: float,
                   events: Optional[int]) -> list:
    """The events to append: a decoded slice of the trace's own prefix.

    Re-appending the trace's opening events keeps the injector
    self-contained (no recorder needed) while exercising exactly the
    append machinery — what the events *mean* is irrelevant to the
    format/resume layers under test, and both the incremental and the
    from-scratch analysis see the same extended bytes either way.
    """
    if events is None and not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    reader = TraceReader(path)
    # tail mode: a torn final chunk (the state truncate_tail_mid_append
    # leaves behind) decodes as "complete prefix + pending tail" instead
    # of raising — open_append drops the same torn bytes on reopen
    reader.tail = True
    decoded = list(reader)
    if not decoded:
        raise ValueError(f"{path} decodes to zero events")
    n = events if events is not None else max(1, int(len(decoded) * fraction))
    return decoded[:min(n, len(decoded))]


def extend_trace(
    path: Union[str, Path],
    *,
    fraction: float = 0.1,
    events: Optional[int] = None,
    events_per_chunk: Optional[int] = None,
) -> dict:
    """Grow a finished trace append-only by ~``fraction`` of its events.

    Returns ``{"events_appended", "chunks_before", "chunks_after"}``.
    The extended file is a strict byte superset of the original up to
    the old trailer, so a chain compare against the original reports
    ``relation == "extension"`` and serve admits it for prefix-resume.
    """
    path = Path(path)
    batch = _decoded_slice(path, fraction, events)
    writer = BinaryTraceWriter.open_append(
        path, events_per_chunk=events_per_chunk)
    chunks_before = writer.chunks_written
    try:
        for ev in batch:
            writer.write(ev)
    except BaseException:
        writer.abort()
        raise
    writer.close()
    return {
        "events_appended": len(batch),
        "chunks_before": chunks_before,
        "chunks_after": writer.chunks_written,
    }


def append_mid_analysis(
    path: Union[str, Path],
    *,
    fraction: float = 0.1,
    events: Optional[int] = None,
    events_per_chunk: Optional[int] = None,
    delay_s: float = 0.05,
    pause_s: float = 0.0,
    finalize: bool = True,
) -> threading.Thread:
    """Extend ``path`` from a background thread while it is being read.

    The events are decoded *now* (while the file is quiescent); the
    returned started thread sleeps ``delay_s``, reopens the trace for
    live append, and writes the batch — flushing chunk by chunk with
    ``pause_s`` between chunks so a follow-mode analysis interleaves
    tail retries with real growth.  ``finalize=False`` leaves the file
    trailerless (recorder still running) instead of closing it.  Join
    the thread before asserting on the file.
    """
    path = Path(path)
    batch = _decoded_slice(path, fraction, events)

    def _append() -> None:
        time.sleep(delay_s)
        writer = BinaryTraceWriter.open_append(
            path, events_per_chunk=events_per_chunk)
        try:
            for ev in batch:
                before = writer.chunks_written
                writer.write(ev)
                if pause_s and writer.chunks_written > before:
                    time.sleep(pause_s)
        except BaseException:
            writer.abort()
            raise
        if finalize:
            writer.close()
        else:
            writer.abort()  # live abort: leave the trailerless tail

    thread = threading.Thread(target=_append, name="append-mid-analysis",
                              daemon=True)
    thread.start()
    return thread


def truncate_tail_mid_append(
    path: Union[str, Path], *, keep_fraction: float = 0.5
) -> int:
    """Tear the file inside its *newest* chunk (recorder died mid-append).

    Unlike :func:`~repro.faultinject.corrupt.truncate_mid_chunk` (which
    targets an arbitrary chunk to model mid-file loss), this always cuts
    the final chunk — the only place a crash during live append can
    tear.  Tail readers must report the prefix and flag the tail as
    pending; ``open_append`` must truncate it away and keep going.
    Returns the new file size.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    chunks = chunk_index(path)
    if not chunks:
        raise ValueError(f"{path} has no chunks to tear")
    info = chunks[-1]
    cut = info.payload_pos + int(info.nbytes * keep_fraction)
    raw = path.read_bytes()[:cut]
    path.write_bytes(raw)
    return len(raw)


def rewrite_prefix(
    path: Union[str, Path],
    chunk: int = 1,
    *,
    count: int = 4,
    seed: int = 0,
    xor: int = 0xFF,
) -> List[int]:
    """Rewrite history: alter ``chunk`` and repair every self-check.

    Flips ``count`` seeded-random payload bytes of the 1-based
    ``chunk``, then recomputes that chunk's crc32 and *all* stored
    rolling-chain digests so the file passes every internal consistency
    check a fresh reader applies.  What it can no longer pass is a
    comparison against externally retained state — a checkpoint cursor
    or a cached chain sidecar — because the chain values from ``chunk``
    onward now commit to different bytes.  This is the adversarial case
    prefix-resume exists to catch: resuming such a file must raise a
    divergence error, never splice old verdicts onto new history.
    Returns the absolute file offsets flipped.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if raw[:len(MAGIC_V2)] != MAGIC_V2:
        raise TraceFormatError("not a v2 trace (bad magic)", path=path)
    (hlen,) = _U32.unpack_from(raw, len(MAGIC_V2))
    hdr_start = len(MAGIC_V2) + _U32.size
    header_bytes = bytes(raw[hdr_start:hdr_start + hlen])
    header = json.loads(header_bytes)
    if not header.get("chunk_crc32"):
        raise TraceFormatError(
            "rewrite_prefix needs a checksummed trace", path=path)
    chunks = chunk_index(path)
    if not 1 <= chunk <= len(chunks):
        raise ValueError(f"{path} has {len(chunks)} chunks, no chunk {chunk}")
    info = chunks[chunk - 1]
    rng = random.Random(seed)
    offsets = sorted(
        info.payload_pos + o
        for o in rng.sample(range(info.nbytes), min(count, info.nbytes))
    )
    for off in offsets:
        raw[off] ^= xor
    # repair the flipped chunk's crc (frame: tag, nbytes, nevents, crc)
    payload = bytes(raw[info.payload_pos:info.payload_pos + info.nbytes])
    _U32.pack_into(raw, info.frame_pos + 12, zlib.crc32(payload))
    # recompute every stored chain digest from the seed; values before
    # the flipped chunk are unchanged by construction, values from it
    # onward now commit to the rewritten bytes
    if header.get("chunk_chain"):
        chain = _chain_seed(bytes(raw[len(MAGIC_V2):hdr_start]), header_bytes)
        for inf in chunks:
            pl = bytes(raw[inf.payload_pos:inf.payload_pos + inf.nbytes])
            chain = _chain_next(chain, pl)
            raw[inf.frame_pos + 16:inf.frame_pos + 16 + 32] = chain
    path.write_bytes(bytes(raw))
    return offsets

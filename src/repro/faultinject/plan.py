"""Deterministic fault plans injected into the analysis engine.

A :class:`FaultPlan` is a picklable bundle of *actions* handed to
``analyze_trace(fault_plan=...)``.  The engine forwards the plan to
every worker process, and each worker calls :meth:`FaultPlan.fire`
after every dispatch tick (a drained batch in queue dispatch, a
dispatched own-shard event in file dispatch).  An action fires when its
``worker``, ``after_batches`` tick and ``attempt`` all match — and
because replay is deterministic, so is the fault: the same plan against
the same trace kills or stalls the same worker at the same point every
run.

``attempt`` selects which run attempt of the worker a fault hits:
``0`` (the default) faults only the first attempt, so a supervised
retry succeeds and the chaos tests can assert verdict parity after
recovery; ``None`` faults *every* attempt, exhausting the retry budget
and forcing the degraded serial path.

:class:`WriterCrash` is the recorder-side counterpart: passed as the
``fault_hook`` of a trace writer, it raises
:class:`SimulatedWriterCrash` after a chosen chunk flush (or at close),
modelling a recorder that dies mid-write.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "FaultPlan",
    "KillWorker",
    "SimulatedWriterCrash",
    "StallWorker",
    "WriterCrash",
]


@dataclass(frozen=True)
class KillWorker:
    """Hard-kill worker ``worker`` at dispatch tick ``after_batches``.

    The kill is ``os._exit`` — no cleanup, no result message, exactly
    what a segfault or an OOM kill looks like to the supervisor.
    """

    worker: int
    after_batches: int = 1
    attempt: Optional[int] = 0  #: None = every attempt
    exitcode: int = 17


@dataclass(frozen=True)
class StallWorker:
    """Wedge worker ``worker`` at tick ``after_batches`` for ``seconds``.

    The default stall is far beyond any sane supervision timeout, so
    the worker looks hung, not slow.
    """

    worker: int
    after_batches: int = 1
    attempt: Optional[int] = 0  #: None = every attempt
    seconds: float = 3600.0


#: per-process memory of fired actions — workers are forked per attempt,
#: so this marks each (action, worker, attempt) one-shot within a worker
_FIRED = set()


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded set of faults for one analysis run."""

    actions: Tuple = ()
    seed: int = 0  #: carried for file corruptors built from the plan

    def fire(self, worker: int, attempt: int, ticks: int) -> None:
        """Called from worker processes after each dispatch tick.

        Triggers use ``ticks >= after_batches`` with one-shot latching
        (file workers can skip tick values when one event dispatches to
        two owned shards), so a plan fires exactly once per attempt at
        the first tick past its threshold.
        """
        for i, action in enumerate(self.actions):
            if action.worker != worker or ticks < action.after_batches:
                continue
            if action.attempt is not None and action.attempt != attempt:
                continue
            key = (i, worker, attempt)
            if key in _FIRED:
                continue
            _FIRED.add(key)
            if isinstance(action, KillWorker):
                os._exit(action.exitcode)
            elif isinstance(action, StallWorker):
                time.sleep(action.seconds)


class SimulatedWriterCrash(RuntimeError):
    """Raised by :class:`WriterCrash` to model a recorder dying mid-write."""


@dataclass
class WriterCrash:
    """Trace-writer ``fault_hook`` that dies after ``after_chunks`` flushes.

    With ``stage="close"`` the crash happens during finalize instead —
    after every chunk hit disk but before the trailer and the atomic
    rename, the nastiest recorder failure to clean up after.
    """

    after_chunks: int = 1
    stage: str = "chunk"
    fired: bool = field(default=False, compare=False)

    def __call__(self, stage: str, n: int) -> None:
        if self.fired:
            return
        if stage == self.stage and (stage == "close"
                                    or n >= self.after_chunks):
            self.fired = True
            raise SimulatedWriterCrash(
                f"injected recorder crash at {stage} {n}"
            )

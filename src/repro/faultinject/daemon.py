"""Daemon-level fault injectors for the ``repro serve`` chaos suite.

Three failure families, all deterministic:

* **Process death.**  :class:`KillAfterCheckpoints` hooks the
  checkpoint-write path and ``os._exit``'s the daemon right after a
  job's *n*-th checkpoint lands — no cleanup, no atexit, no flushed
  buffers: to every file and socket it is exactly ``kill -9``, but at a
  reproducible point mid-analysis.  (:func:`kill_daemon` is the blunt
  sibling for killing a real subprocess by pid.)
* **Wedged workers.**  :class:`StallAfterCheckpoints` sleeps the
  analysis thread at the same hook point, modelling a worker that stops
  making progress while the daemon's health endpoints stay live.
* **Broken clients.**  :func:`sever_mid_upload` speaks just enough raw
  HTTP to announce a large body and hang up partway through it.

The process-level injectors are armed in a daemon *subprocess* through
the ``REPRO_SERVE_FAULT`` environment variable (chaos testing only)::

    REPRO_SERVE_FAULT=kill-after-ckpt:2        # die after 2nd ckpt write
    REPRO_SERVE_FAULT=stall-after-ckpt:1:30    # wedge 30s after 1st

``repro serve`` calls :func:`install_serve_faults_from_env` at startup;
with the variable unset this is a no-op.
"""

from __future__ import annotations

import os
import socket
import struct
import time
from dataclasses import dataclass, field

from ..pipeline import checkpoint as _ckpt

__all__ = [
    "KillAfterCheckpoints",
    "StallAfterCheckpoints",
    "install_serve_faults_from_env",
    "kill_daemon",
    "sever_mid_upload",
]

FAULT_ENV = "REPRO_SERVE_FAULT"


@dataclass
class KillAfterCheckpoints:
    """``os._exit`` the process after ``after`` checkpoint-file writes."""

    after: int = 1
    exitcode: int = 137  # what the shell reports for SIGKILL
    seen: int = field(default=0, compare=False)

    def __call__(self, lane: str, seq: int, path) -> None:
        self.seen += 1
        if self.seen >= self.after:
            os._exit(self.exitcode)


@dataclass
class StallAfterCheckpoints:
    """Wedge the calling (analysis) thread after ``after`` writes."""

    after: int = 1
    seconds: float = 3600.0
    seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)

    def __call__(self, lane: str, seq: int, path) -> None:
        if self.fired:
            return
        self.seen += 1
        if self.seen >= self.after:
            self.fired = True
            time.sleep(self.seconds)


def install_serve_faults_from_env() -> object:
    """Arm a checkpoint-write fault from ``REPRO_SERVE_FAULT``; or None.

    Returns the installed hook (tests introspect it); raises
    ``ValueError`` on a malformed spec — a chaos run with a typo'd
    injector must fail loudly, not run fault-free and "pass".
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return None
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "kill-after-ckpt":
            hook = KillAfterCheckpoints(
                after=int(parts[1]),
                exitcode=int(parts[2]) if len(parts) > 2 else 137)
        elif kind == "stall-after-ckpt":
            hook = StallAfterCheckpoints(
                after=int(parts[1]),
                seconds=float(parts[2]) if len(parts) > 2 else 3600.0)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    except (IndexError, ValueError) as exc:
        raise ValueError(f"bad {FAULT_ENV} spec {spec!r}: {exc}") from exc
    _ckpt.add_write_hook(hook)
    return hook


def kill_daemon(pid: int) -> None:
    """SIGKILL a daemon subprocess — the real, unhooked ``kill -9``."""
    import signal

    os.kill(pid, signal.SIGKILL)


def sever_mid_upload(host: str, port: int, *, claim_bytes: int,
                     body: bytes = b"", path: str = "/jobs",
                     timeout: float = 5.0) -> None:
    """Open a POST claiming ``claim_bytes``, send ``body``, hang up.

    ``len(body) < claim_bytes`` models a client dying mid-upload: the
    server sees a short read and must reject the partial trace without
    creating a job (and without wedging the handler thread).
    """
    if len(body) >= claim_bytes:
        raise ValueError("body must be shorter than the claimed length")
    head = (f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/octet-stream\r\n"
            f"Content-Length: {claim_bytes}\r\n"
            f"\r\n").encode("ascii")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + body)
        # abortive close: RST rather than FIN, the rudest disconnect
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))

"""Fault injection for the analysis runtime — chaos, made deterministic.

A resilience claim is only as good as the failures it has been shown to
survive.  This package provides seeded, reproducible fault *plans*
against the pipeline (kill a worker after batch *k*, stall one past the
supervision timeout) and the trace files themselves (flip payload bytes
in chunk *j*, truncate mid-chunk, smash a frame tag), plus a simulated
recorder crash for the atomic-finalize path.  The chaos suite under
``tests/resilience/`` drives every plan and asserts that analysis
either recovers to byte-identical verdicts or degrades cleanly with
accurate loss accounting — never hangs, never lies.

Quickstart::

    from repro.faultinject import FaultPlan, KillWorker, flip_bytes
    from repro.pipeline import analyze_trace

    plan = FaultPlan(actions=(KillWorker(worker=1, after_batches=2),))
    result = analyze_trace("mv.trace", jobs=4, dispatch="file",
                           fault_plan=plan)      # retried, full verdicts

    flip_bytes("mv.trace", chunk=3, seed=7)
    result = analyze_trace("mv.trace", salvage=True)  # chunk 3 quarantined
"""

from .corrupt import (
    ChunkInfo,
    chunk_index,
    corrupt_checkpoint,
    corrupt_chunk_tag,
    corrupt_journal_record,
    flip_bytes,
    truncate_mid_chunk,
)
from .incremental import (
    append_mid_analysis,
    extend_trace,
    rewrite_prefix,
    truncate_tail_mid_append,
)
from .daemon import (
    KillAfterCheckpoints,
    StallAfterCheckpoints,
    install_serve_faults_from_env,
    kill_daemon,
    sever_mid_upload,
)
from .plan import (
    FaultPlan,
    KillWorker,
    SimulatedWriterCrash,
    StallWorker,
    WriterCrash,
)

__all__ = [
    "ChunkInfo",
    "FaultPlan",
    "KillAfterCheckpoints",
    "KillWorker",
    "SimulatedWriterCrash",
    "StallAfterCheckpoints",
    "StallWorker",
    "WriterCrash",
    "append_mid_analysis",
    "chunk_index",
    "corrupt_checkpoint",
    "corrupt_chunk_tag",
    "corrupt_journal_record",
    "extend_trace",
    "flip_bytes",
    "install_serve_faults_from_env",
    "kill_daemon",
    "rewrite_prefix",
    "sever_mid_upload",
    "truncate_mid_chunk",
    "truncate_tail_mid_append",
]

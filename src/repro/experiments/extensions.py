"""Experiment driver for the implemented future-work extensions.

One summary table covering what this reproduction adds beyond the
paper's evaluation:

* §6(3) strided merging — MiniVite BST node counts for the original
  tool, the paper's algorithm, and the strided extension;
* §2.1 atomicity — histogram verdicts for the accumulate / manual /
  fetch-and-op variants;
* per-target exclusive locks — verdicts for the lock-fixed variant
  (our detector clean; flush-blind and lock_all-only tools cry wolf).
"""

from __future__ import annotations

from typing import List

from ..apps import (
    HistogramConfig,
    HistogramResult,
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    histogram_program,
    make_comm_plan,
    minivite_program,
)
from ..core import OurDetector, StridedDetector
from ..detectors import MustRma, RmaAnalyzerLegacy
from ..mpi import World
from .tables import ExperimentResult, render_table

__all__ = ["extensions_summary"]


def _minivite_nodes(nvertices: int = 4096, nranks: int = 8) -> List[List]:
    config = MiniViteConfig(nvertices=nvertices)
    graph = default_graph(config)
    plan = make_comm_plan(graph, nranks)
    rows = []
    for factory in (RmaAnalyzerLegacy, OurDetector, StridedDetector):
        det = factory()
        World(nranks, [det]).run(minivite_program, graph, plan, config,
                                 MiniViteResult())
        rows.append([det.name, det.node_stats().total_max_nodes,
                     det.reports_total])
    return rows


def _histogram_verdicts(nranks: int = 4) -> List[List]:
    variants = [
        ("MPI_Accumulate", HistogramConfig(samples_per_rank=64)),
        ("MPI_Fetch_and_op", HistogramConfig(samples_per_rank=64,
                                             use_accumulate=False,
                                             use_fetch_op=True)),
        ("manual Get+Put (buggy)", HistogramConfig(samples_per_rank=64,
                                                   use_accumulate=False)),
        ("exclusive-lock RMW", HistogramConfig(samples_per_rank=64,
                                               use_accumulate=False,
                                               use_locks=True)),
    ]
    rows = []
    for label, config in variants:
        row: List = [label]
        for factory in (OurDetector, RmaAnalyzerLegacy, MustRma):
            det = factory()
            World(nranks, [det]).run(histogram_program, config,
                                     HistogramResult())
            row.append("error" if det.race_detected else "clean")
        rows.append(row)
    return rows


def extensions_summary() -> ExperimentResult:
    """Strided merging, atomic operations and per-target locks, measured."""
    minivite_rows = _minivite_nodes()
    histogram_rows = _histogram_verdicts()

    text = (
        "strided merging (§6(3) future work) — MiniVite BST nodes:\n"
        + render_table(["tool", "BST nodes (peak)", "races"], minivite_rows)
        + "\n\natomics & locks — distributed-histogram verdicts:\n"
        + render_table(
            ["variant", "Our Contribution", "RMA-Analyzer", "MUST-RMA"],
            histogram_rows,
        )
        + "\n\nonly the manual Get+Put variant is a real race; the lock "
        "variant needs per-target-lock + precise flush support to prove "
        "safe (§5.1/§6 limitations of the other tools)"
    )
    return ExperimentResult(
        "extensions",
        "Future-work extensions: strided merging, atomics, target locks",
        text,
        data={
            "minivite": {r[0]: r[1] for r in minivite_rows},
            "histogram": {r[0]: r[1:] for r in histogram_rows},
        },
    )

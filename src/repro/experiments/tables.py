"""Plain-text table/series rendering for the experiment drivers.

The paper's figures are bar charts and line plots; in a terminal-first
reproduction every driver renders its result as an aligned text table
(with an optional ASCII bar column for the chart-shaped figures) plus a
structured payload tests can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

__all__ = ["ExperimentResult", "render_table", "render_bars"]


@dataclass
class ExperimentResult:
    """One regenerated table/figure: identifier, text, structured data."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"== {self.exp_id}: {self.title} =="
        return f"{header}\n{self.text}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Align columns; numbers become human-readable strings."""
    table = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    unit: str = "",
    width: int = 48,
) -> str:
    """Horizontal ASCII bar chart (the Fig. 10 shape)."""
    vmax = max(values) if values else 0.0
    lwidth = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(width * value / vmax)) if vmax > 0 else 0
        bar = "#" * max(n, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(lwidth)}  {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)

"""Experiment drivers for the algorithm-level tables and figures.

* Table 1 — the access-type combination table,
* Fig. 3 — the three-process race matrix,
* Fig. 5 / Code 1 — the lower-bound false negative,
* Fig. 8b / Code 2 — the merging worked example (5,002 -> 2 nodes),
* Table 2 — tool feedback on the four named microbenchmarks,
* Table 3 — the FP/FN/TP/TN confusion matrix over the whole suite.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import OurDetector
from ..detectors import McCChecker, MustRma, ParkMirror, RmaAnalyzerLegacy
from ..intervals import fig3_matrix, format_fig3, table1_rows
from ..microbench import (
    TABLE2_NAMES,
    code1_program,
    code2_program,
    run_code,
    run_suite,
    suite_by_name,
)
from ..mpi import World
from .tables import ExperimentResult, render_table

__all__ = [
    "table1_combine",
    "fig3_race_matrix",
    "fig5_code1",
    "fig8_code2",
    "table2_named_codes",
    "table3_confusion",
    "PAPER_TABLE3",
]

#: the paper's Table 3 row values (RMA-Analyzer's row is internally
#: inconsistent in the paper — 41+0+6+107 = 154 but TN should then be 101;
#: see EXPERIMENTS.md)
PAPER_TABLE3 = {
    "RMA-Analyzer": {"FP": 6, "FN": 0, "TP": 41, "TN": 107},
    "MUST-RMA": {"FP": 0, "FN": 15, "TP": 32, "TN": 107},
    "Our Contribution": {"FP": 0, "FN": 0, "TP": 47, "TN": 107},
}


def table1_combine() -> ExperimentResult:
    """Regenerate paper Table 1 from the combination semantics."""
    headers = ["stored \\ new", "Local_R-2", "Local_W-2", "RMA_R-2", "RMA_W-2"]
    rows = table1_rows()
    return ExperimentResult(
        "table1",
        "Resulting access type and debug info of an intersection fragment",
        render_table(headers, rows),
        data={"rows": rows},
    )


def fig3_race_matrix() -> ExperimentResult:
    """Regenerate paper Fig. 3 from the race predicate."""
    matrix = fig3_matrix()
    return ExperimentResult(
        "fig3",
        "Race matrix for 3 processes (left bit: target, right bit: origin)",
        format_fig3(matrix),
        data={
            "matrix": {
                (op1.value, caller.value, op2.value): {
                    pl.value: bits for pl, bits in cells.items()
                }
                for (op1, caller, op2), cells in matrix.items()
            }
        },
    )


def fig5_code1() -> ExperimentResult:
    """Code 1: the original tool misses the race, ours reports it."""
    rows = []
    data: Dict[str, int] = {}
    messages: List[str] = []
    for factory in (RmaAnalyzerLegacy, OurDetector):
        det = factory()
        World(2, [det]).run(code1_program)
        rows.append([det.name, det.reports_total > 0, det.reports_total])
        data[det.name] = det.reports_total
        messages.extend(r.message for r in det.reports[:1])
    return ExperimentResult(
        "fig5",
        "Code 1 (Load(4); MPI_Put(2,12); Store(7)) — detection outcome",
        render_table(["tool", "race detected", "reports"], rows)
        + ("\n\n" + "\n".join(messages) if messages else ""),
        data=data,
    )


def fig8_code2(iterations: int = 1000) -> ExperimentResult:
    """Code 2: BST size with and without fragmentation+merging."""
    rows = []
    data: Dict[str, int] = {}
    for factory in (RmaAnalyzerLegacy, OurDetector):
        det = factory()
        World(2, [det]).run(code2_program, iterations)
        nodes = det.node_stats().max_nodes_per_rank.get(0, 0)
        rows.append([det.name, iterations, nodes])
        data[det.name] = nodes
    return ExperimentResult(
        "fig8",
        "Code 2 (one-sided communication in a loop) — origin BST size",
        render_table(["tool", "iterations", "BST nodes (rank 0)"], rows),
        data=data,
    )


def table2_named_codes() -> ExperimentResult:
    """Tool feedback on the four named microbenchmarks of Table 2."""
    suite = suite_by_name()
    factories = [RmaAnalyzerLegacy, MustRma, OurDetector]
    headers = ["code", "expected"] + [f().name for f in factories]
    rows = []
    data: Dict[str, Dict[str, bool]] = {}
    for name in TABLE2_NAMES:
        spec = suite[name]
        row: List[object] = [name, spec.expected]
        data[name] = {}
        for factory in factories:
            det = factory()
            reported, _ = run_code(spec, det)
            row.append("error" if reported else "none")
            data[name][det.name] = reported
        rows.append(row)
    return ExperimentResult(
        "table2",
        "Feedback on four microbenchmark codes (paper Table 2)",
        render_table(headers, rows),
        data=data,
    )


def table3_confusion(
    *, include_related_work: bool = False
) -> ExperimentResult:
    """FP/FN/TP/TN of every tool over the generated suite (paper Table 3)."""
    factories = [RmaAnalyzerLegacy, MustRma, OurDetector]
    if include_related_work:
        factories += [ParkMirror, McCChecker]
    rows = []
    data: Dict[str, Dict[str, int]] = {}
    for factory in factories:
        matrix = run_suite(factory)
        rows.append(
            [matrix.detector, matrix.fp, matrix.fn, matrix.tp, matrix.tn,
             len(matrix.verdicts)]
        )
        data[matrix.detector] = {
            "FP": matrix.fp, "FN": matrix.fn, "TP": matrix.tp, "TN": matrix.tn,
        }
    note = (
        "paper suite: 154 codes (47 race / 107 safe); regenerated suite is "
        "larger but reproduces the discriminating counts (6 FP legacy, "
        "15 FN MUST-RMA, 0/0 ours)"
    )
    return ExperimentResult(
        "table3",
        "Confusion matrix over the microbenchmark suite (paper Table 3)",
        render_table(["tool", "FP", "FN", "TP", "TN", "codes"], rows)
        + f"\n\n{note}",
        data=data,
    )

"""One driver per table/figure of the paper's evaluation.

Registry ``EXPERIMENTS`` maps experiment ids (``table1`` .. ``fig12``)
to zero-argument callables returning an :class:`ExperimentResult`; the
CLI (``python -m repro``) and the benchmark harness both go through it.
"""

from typing import Callable, Dict

from .applications import (
    DEFAULT_RANK_SWEEP,
    FIG11_VERTICES,
    FIG12_VERTICES,
    fig9_minivite_race,
    fig10_cfd_epoch_time,
    fig11_minivite_small,
    fig12_minivite_large,
    minivite_rank_sweep,
    table4_bst_nodes,
)
from .extensions import extensions_summary
from .static_analysis import static_analysis
from .micro import (
    PAPER_TABLE3,
    fig3_race_matrix,
    fig5_code1,
    fig8_code2,
    table1_combine,
    table2_named_codes,
    table3_confusion,
)
from .tables import ExperimentResult, render_bars, render_table

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_combine,
    "fig3": fig3_race_matrix,
    "fig5": fig5_code1,
    "fig8": fig8_code2,
    "table2": table2_named_codes,
    "table3": table3_confusion,
    "fig9": fig9_minivite_race,
    "fig10": fig10_cfd_epoch_time,
    "fig11": fig11_minivite_small,
    "fig12": fig12_minivite_large,
    "table4": table4_bst_nodes,
    "static": static_analysis,
    "extensions": extensions_summary,
}

__all__ = [
    "DEFAULT_RANK_SWEEP",
    "EXPERIMENTS",
    "ExperimentResult",
    "FIG11_VERTICES",
    "FIG12_VERTICES",
    "PAPER_TABLE3",
    "fig3_race_matrix",
    "fig5_code1",
    "fig8_code2",
    "fig9_minivite_race",
    "fig10_cfd_epoch_time",
    "fig11_minivite_small",
    "fig12_minivite_large",
    "minivite_rank_sweep",
    "render_bars",
    "render_table",
    "extensions_summary",
    "static_analysis",
    "table1_combine",
    "table2_named_codes",
    "table3_confusion",
    "table4_bst_nodes",
]

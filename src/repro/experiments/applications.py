"""Experiment drivers for the application-scale evaluation (§5.3).

* Fig. 9  — the data race injected into MiniVite and its report,
* Fig. 10 — cumulative epoch time in CFD-Proxy for the four tools,
* Fig. 11 — MiniVite execution time vs rank count (small input),
* Fig. 12 — same with the doubled input,
* Table 4 — MiniVite BST node counts, RMA-Analyzer vs ours.

Scale note: the paper ran 640,000 / 1,280,000-vertex graphs on 2-16
cluster nodes.  The drivers default to laptop-scale inputs with the
same 1:2 size ratio and the same 32-256 rank sweep; absolute numbers
differ, the comparisons' shape is the reproduction target (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import (
    AppRun,
    CfdConfig,
    CfdResult,
    DETECTOR_FACTORIES,
    MiniViteConfig,
    MiniViteResult,
    cfd_program,
    default_graph,
    default_partitions,
    make_comm_plan,
    minivite_program,
    run_app,
)
from ..core import OurDetector
from ..mpi import World
from .tables import ExperimentResult, render_bars, render_table

__all__ = [
    "fig9_minivite_race",
    "fig10_cfd_epoch_time",
    "fig11_minivite_small",
    "fig12_minivite_large",
    "table4_bst_nodes",
    "minivite_rank_sweep",
    "DEFAULT_RANK_SWEEP",
    "FIG11_VERTICES",
    "FIG12_VERTICES",
]

#: the paper sweeps 32..256 ranks; scaled default for a laptop run
DEFAULT_RANK_SWEEP = (8, 16, 32, 64)
#: paper: 640,000 and 1,280,000 vertices; scaled 1:40 keeping the 1:2 ratio
FIG11_VERTICES = 16_000
FIG12_VERTICES = 32_000

_TOOL_ORDER = ("Baseline", "RMA-Analyzer", "MUST-RMA", "Our Contribution")


def fig9_minivite_race(
    nvertices: int = 2048, nranks: int = 4
) -> ExperimentResult:
    """Duplicate MiniVite's MPI_Put (Fig. 9a) and show the report (9b)."""
    config = MiniViteConfig(nvertices=nvertices, inject_put_race=True)
    graph = default_graph(config)
    plan = make_comm_plan(graph, nranks)
    det = OurDetector()
    World(nranks, [det]).run(
        minivite_program, graph, plan, config, MiniViteResult()
    )
    messages = [r.message for r in det.reports[:2]]
    body = "\n".join(f"$ mpiexec -n {nranks} ./miniVite -n {nvertices}"
                     .splitlines() + messages)
    return ExperimentResult(
        "fig9",
        "Injected MPI_Put race in MiniVite and the returned report",
        body,
        data={
            "races": det.reports_total,
            "messages": messages,
        },
    )


def fig10_cfd_epoch_time(
    nranks: int = 12,
    iterations: int = 50,
    config: Optional[CfdConfig] = None,
) -> ExperimentResult:
    """Cumulative time spent in the epochs of CFD-Proxy, per tool."""
    config = config or CfdConfig(iterations=iterations)
    parts = default_partitions(nranks, config)
    runs: List[AppRun] = []
    for tool in _TOOL_ORDER:
        det = DETECTOR_FACTORIES[tool]()
        runs.append(
            run_app("cfd-proxy", cfd_program, nranks, det, parts, config,
                    CfdResult())
        )
    labels = [r.detector for r in runs]
    values = [r.sim_elapsed_ms for r in runs]
    rows = [
        [r.detector, r.sim_elapsed_ms, r.analysis_seconds, r.total_max_nodes,
         r.races]
        for r in runs
    ]
    text = (
        render_bars(labels, values, unit=" ms (simulated epoch time)")
        + "\n\n"
        + render_table(
            ["tool", "sim epoch time (ms)", "analysis wall (s)",
             "BST nodes (peak)", "race reports"],
            rows,
        )
    )
    return ExperimentResult(
        "fig10",
        f"CFD-Proxy cumulative epoch time ({nranks} ranks, "
        f"{config.iterations} iterations)",
        text,
        data={r.detector: r for r in runs},
    )


def minivite_rank_sweep(
    nvertices: int,
    rank_sweep: Sequence[int] = DEFAULT_RANK_SWEEP,
    tools: Sequence[str] = _TOOL_ORDER,
    sweeps: int = 1,
) -> Dict[int, Dict[str, AppRun]]:
    """Run MiniVite for every (rank count, tool) combination."""
    out: Dict[int, Dict[str, AppRun]] = {}
    config = MiniViteConfig(nvertices=nvertices, sweeps=sweeps)
    graph = default_graph(config)
    for nranks in rank_sweep:
        plan = make_comm_plan(graph, nranks)
        out[nranks] = {}
        for tool in tools:
            det = DETECTOR_FACTORIES[tool]()
            out[nranks][tool] = run_app(
                "minivite", minivite_program, nranks, det, graph, plan,
                config, MiniViteResult(),
            )
    return out


def _minivite_figure(
    exp_id: str, nvertices: int, rank_sweep: Sequence[int]
) -> ExperimentResult:
    sweep = minivite_rank_sweep(nvertices, rank_sweep)
    headers = ["ranks"] + list(_TOOL_ORDER)
    rows = []
    for nranks in rank_sweep:
        rows.append(
            [nranks]
            + [sweep[nranks][tool].sim_elapsed_ms for tool in _TOOL_ORDER]
        )
    return ExperimentResult(
        exp_id,
        f"MiniVite execution time (ms, simulated) — {nvertices:,} vertices",
        render_table(headers, rows),
        data={"sweep": sweep, "nvertices": nvertices},
    )


def fig11_minivite_small(
    nvertices: int = FIG11_VERTICES,
    rank_sweep: Sequence[int] = DEFAULT_RANK_SWEEP,
) -> ExperimentResult:
    """Paper Fig. 11 (640,000 vertices, scaled)."""
    return _minivite_figure("fig11", nvertices, rank_sweep)


def fig12_minivite_large(
    nvertices: int = FIG12_VERTICES,
    rank_sweep: Sequence[int] = DEFAULT_RANK_SWEEP,
) -> ExperimentResult:
    """Paper Fig. 12 (1,280,000 vertices, scaled — 2x Fig. 11)."""
    return _minivite_figure("fig12", nvertices, rank_sweep)


def table4_bst_nodes(
    small: int = FIG11_VERTICES,
    large: int = FIG12_VERTICES,
    rank_sweep: Sequence[int] = DEFAULT_RANK_SWEEP,
) -> ExperimentResult:
    """MiniVite BST node counts: RMA-Analyzer vs ours, both inputs."""
    tools = ("RMA-Analyzer", "Our Contribution")
    rows = []
    data: Dict[Tuple[int, int], Dict[str, int]] = {}
    for nranks in rank_sweep:
        cells: Dict[int, Dict[str, int]] = {}
        for nvertices in (small, large):
            sweep = minivite_rank_sweep(nvertices, [nranks], tools)
            cells[nvertices] = {
                tool: sweep[nranks][tool].max_nodes_one_rank for tool in tools
            }
            data[(nranks, nvertices)] = cells[nvertices]
        legacy_s = cells[small]["RMA-Analyzer"]
        ours_s = cells[small]["Our Contribution"]
        legacy_l = cells[large]["RMA-Analyzer"]
        ours_l = cells[large]["Our Contribution"]
        red_s = 100.0 * (legacy_s - ours_s) / legacy_s if legacy_s else 0.0
        red_l = 100.0 * (legacy_l - ours_l) / legacy_l if legacy_l else 0.0
        rows.append(
            [nranks, f"{legacy_s:,}/{legacy_l:,}", f"{ours_s:,}/{ours_l:,}",
             f"{red_s:.2f}%/{red_l:.2f}%"]
        )
    return ExperimentResult(
        "table4",
        f"MiniVite BST nodes per rank ({small:,}/{large:,} vertices)",
        render_table(
            ["ranks", "RMA-Analyzer", "Our Contribution", "Reduction"], rows
        ),
        data={"cells": data},
    )

"""Experiment driver for the §7 future-work static analysis.

Not a table in the paper — its *conclusion*: "we plan to enhance the
static analysis proposed by Saillard et al. [16] to detect more errors
at compile time.  We also plan to combine this static analysis to
RMA-Analyzer in order to reduce the overhead at runtime."  This driver
measures both halves on the regenerated microbenchmark suite:

* how many of the suite's races the compile-time pass proves *before
  execution* (the origin-side ones), with zero static false positives;
* how many instrumented source lines the static+dynamic combination can
  drop (lines proven race-free need no runtime hook).
"""

from __future__ import annotations


from ..microbench import generate_suite
from ..staticcheck import check_program, from_codespec, instrumentation_plan
from .tables import ExperimentResult, render_table

__all__ = ["static_analysis"]


def static_analysis() -> ExperimentResult:
    """Compile-time detection + instrumentation reduction over the suite."""
    suite = generate_suite()
    static_tp = static_fp = static_fn = 0
    warned = 0
    lines_total = lines_needed = 0
    for spec in suite:
        program = from_codespec(spec)
        report = check_program(program)
        if report.races:
            if spec.racy:
                static_tp += 1
            else:
                static_fp += 1
        elif spec.racy:
            static_fn += 1
            if report.may_races:
                warned += 1
        plan = instrumentation_plan(program)
        lines_total += len(plan)
        lines_needed += sum(1 for needed in plan.values() if needed)

    races = sum(1 for s in suite if s.racy)
    rows = [
        ["definite races proven at compile time", f"{static_tp} / {races}"],
        ["static false positives", static_fp],
        ["races left to the runtime tool", static_fn],
        ["...of which flagged as may-race warnings", warned],
        ["instrumented lines (no static pass)", lines_total],
        ["instrumented lines (with static pass)", lines_needed],
        ["instrumentation reduction",
         f"{100.0 * (lines_total - lines_needed) / max(lines_total, 1):.1f}%"],
    ]
    note = (
        "the compile-time pass catches exactly the same-process (origin-"
        "side) races — the documented limitation of Saillard et al. [16]; "
        "cross-process races remain the runtime tool's job"
    )
    return ExperimentResult(
        "static",
        "§7 extension: compile-time detection + static/dynamic combination",
        render_table(["metric", "value"], rows) + f"\n\n{note}",
        data={
            "static_tp": static_tp,
            "static_fp": static_fp,
            "static_fn": static_fn,
            "warned": warned,
            "lines_total": lines_total,
            "lines_needed": lines_needed,
        },
    )

"""Simulated MPI-RMA runtime.

A deterministic, single-process stand-in for the paper's OpenMPI +
LLVM-instrumentation stack: rank programs are generator functions driven
by :class:`World`, every memory access and synchronization call flows
through the PMPI-like :class:`Interposition` to the attached detectors,
and an alpha-beta :class:`SimClock` models cluster timing.
"""

from .costmodel import CostParams, SimClock
from .datatypes import BYTE, FLOAT32, FLOAT64, GRAPH_TYPE, INT32, INT64, Datatype
from .epoch import EpochTracker
from .errors import (
    CollectiveMismatchError,
    DeadlockError,
    EpochError,
    MpiSimError,
    OutOfWindowError,
    RmaUsageError,
    TraceFormatError,
)
from .interposition import DetectorProtocol, Interposition
from .memory import AddressSpace, Region, RegionInfo, RegionKind
from .simulator import Buffer, RankContext, Request, World, run_spmd
from .trace import (
    LocalEvent,
    RmaEvent,
    StreamingTraceLog,
    SyncEvent,
    SyncKind,
    TraceLog,
)
from .trace_io import LoadedTrace, load_trace, replay_trace, save_trace
from .window import Window

__all__ = [
    "AddressSpace",
    "BYTE",
    "Buffer",
    "CollectiveMismatchError",
    "CostParams",
    "Datatype",
    "DeadlockError",
    "DetectorProtocol",
    "EpochError",
    "EpochTracker",
    "FLOAT32",
    "FLOAT64",
    "GRAPH_TYPE",
    "INT32",
    "INT64",
    "Interposition",
    "LoadedTrace",
    "LocalEvent",
    "MpiSimError",
    "OutOfWindowError",
    "RankContext",
    "Region",
    "RegionInfo",
    "Request",
    "RegionKind",
    "RmaEvent",
    "RmaUsageError",
    "SimClock",
    "StreamingTraceLog",
    "SyncEvent",
    "SyncKind",
    "TraceFormatError",
    "TraceLog",
    "load_trace",
    "replay_trace",
    "save_trace",
    "Window",
    "World",
    "run_spmd",
]

"""Exceptions raised by the simulated MPI-RMA runtime.

These mirror the failure modes a real MPI library (or a debug build of
one) would report: usage errors are programming bugs in the *simulated
application*, not in the simulator itself, and carry enough context to
point at the offending rank and call.
"""

from __future__ import annotations

__all__ = [
    "MpiSimError",
    "RmaUsageError",
    "EpochError",
    "OutOfWindowError",
    "CollectiveMismatchError",
    "DeadlockError",
    "TraceFormatError",
    "TraceChainMismatch",
    "WorkerCrashedError",
]


class MpiSimError(RuntimeError):
    """Base class for all simulated-MPI errors."""


class RmaUsageError(MpiSimError):
    """An RMA call was malformed (bad target, bad size, freed window...)."""


class EpochError(RmaUsageError):
    """RMA call outside an epoch, double lock, unlock without lock, ..."""


class OutOfWindowError(RmaUsageError):
    """A one-sided operation reached past the target's window bounds."""


class CollectiveMismatchError(MpiSimError):
    """Ranks disagreed on a collective call (different op or window)."""


class DeadlockError(MpiSimError):
    """The scheduler found no runnable rank while some are still waiting."""


class TraceFormatError(MpiSimError, ValueError):
    """A trace file is corrupt, truncated, or not a trace at all.

    Carries the offending ``path`` and, where meaningful (JSON-lines
    traces, chunk records of binary traces), the 1-based ``line`` the
    decoder choked on.  Subclasses :class:`ValueError` so pre-existing
    callers that caught the old raw error keep working.
    """

    def __init__(self, message: str, *, path=None, line=None) -> None:
        if path is not None:
            where = str(path) if line is None else f"{path}:{line}"
            message = f"{where}: {message}"
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.line = line


class TraceChainMismatch(TraceFormatError):
    """A stored rolling-chain digest disagrees with the recomputed chain.

    Distinct from garden-variety corruption (the payload checksum still
    passes): the chunk's *content* is internally consistent but it is
    not the content the preceding chunks commit to — the prefix was
    rewritten underneath an append, or chunks were spliced from another
    trace.  Follow/resume converts this into
    :class:`~repro.pipeline.checkpoint.TraceDivergedError` so callers
    can branch on "re-record, don't retry".  Carries the 1-based
    ``chunk`` where the chain first broke.
    """

    def __init__(self, message: str, *, path=None, chunk=None) -> None:
        super().__init__(message, path=path)
        self.chunk = chunk


class WorkerCrashedError(MpiSimError):
    """An analysis worker process died (or wedged) before reporting.

    Raised by the pipeline's collector instead of blocking forever on
    the result queue; carries the ``worker`` id, the ``shards`` (memory
    ranks) it owned, the failure ``reason`` (``"crashed"``, ``"stalled"``
    or ``"exited without result"``) and the OS ``exitcode`` where known.
    The supervisor layer catches this to retry or degrade; it reaches
    user code only when recovery is disabled or impossible.
    """

    def __init__(
        self,
        worker: int,
        shards,
        *,
        reason: str = "crashed",
        exitcode=None,
    ) -> None:
        shard_list = list(shards)
        detail = f" (exitcode {exitcode})" if exitcode is not None else ""
        super().__init__(
            f"analysis worker {worker} {reason}{detail} "
            f"while owning shards {shard_list}"
        )
        self.worker = worker
        self.shards = shard_list
        self.reason = reason
        self.exitcode = exitcode

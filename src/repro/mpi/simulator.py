"""The simulated MPI-RMA world.

Rank programs are ordinary generator functions::

    def program(ctx: RankContext):
        win = yield ctx.win_allocate("halo", 1024)      # collective
        ctx.win_lock_all(win)
        ctx.put(win, target=(ctx.rank + 1) % ctx.size, disp=0,
                buf=mybuf, count=16)
        ctx.win_flush_all(win)
        yield ctx.barrier()                              # collective
        ctx.win_unlock_all(win)
        yield ctx.win_free(win)                          # collective

``yield`` marks the *collective* points: the scheduler runs ranks round
robin, advancing each to its next yield, and matches collectives across
ranks (mismatches raise :class:`CollectiveMismatchError`, a missing rank
raises :class:`DeadlockError`).  Everything between two yields executes
atomically from the scheduler's point of view — which is faithful
enough, because MPI-RMA gives no intra-epoch ordering anyway (the
paper's Ordering property) and the detectors under test never rely on
fine-grained interleaving, only on the per-process program order that
the generator structure preserves exactly.

Data movement is applied eagerly (sequentially consistent *values*, so
application code like the Louvain phase computes real results) while
*detection* semantics — asynchrony, completion, epochs — are carried by
the access-type/epoch metadata each event ships to the detectors.

Debug info (file:line of the access) is captured automatically from the
calling frame, mirroring the LLVM pass's debug metadata; the
microbenchmark generator overrides it explicitly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Union

import numpy as np

from ..intervals import AccessType, DebugInfo, Interval, MemoryAccess
from .costmodel import CostParams, SimClock
from .datatypes import BYTE, Datatype
from .epoch import EpochTracker
from .errors import (
    CollectiveMismatchError,
    DeadlockError,
    MpiSimError,
    RmaUsageError,
)
from .interposition import DetectorProtocol, Interposition
from .memory import AddressSpace, Region, RegionKind
from .trace import TraceLog
from .window import Window

__all__ = ["Buffer", "RankContext", "World", "run_spmd"]


# ---------------------------------------------------------------------------
# Collective tokens (values the programs yield)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Token:
    kind: str
    payload: tuple = ()


# ---------------------------------------------------------------------------
# Buffers
# ---------------------------------------------------------------------------


class Request:
    """Handle of a request-based one-sided op (MPI_Rput / MPI_Rget).

    ``MPI_Wait`` on it guarantees *local* completion only: the origin
    buffer is reusable, but the target-side effect is not ordered with
    anything until a flush or the epoch's end.
    """

    __slots__ = ("rank", "wid", "origin_access", "completed")

    def __init__(self, rank: int, wid: int, origin_access) -> None:
        self.rank = rank
        self.wid = wid
        self.origin_access = origin_access
        self.completed = False


class Buffer:
    """A typed, named allocation of one rank.

    ``buf.np`` exposes the raw numpy view for *un-instrumented* work —
    exactly like the loads/stores the LLVM alias analysis proves
    irrelevant and never instruments.  Instrumented accesses go through
    :meth:`RankContext.load` / :meth:`RankContext.store`.
    """

    __slots__ = ("region", "dtype")

    def __init__(self, region: Region, dtype: Datatype) -> None:
        self.region = region
        self.dtype = dtype

    @property
    def np(self) -> np.ndarray:
        return self.region.view(self.dtype.np_dtype)

    @property
    def name(self) -> str:
        return self.region.name

    @property
    def nelems(self) -> int:
        return self.region.size // self.dtype.extent

    def interval(self, off_elems: int, count: int) -> Interval:
        return self.region.sub_interval(
            off_elems * self.dtype.extent, count * self.dtype.extent
        )


def _caller_debug(depth: int = 2) -> DebugInfo:
    """file:line of the simulated-application call site."""
    frame = sys._getframe(depth)
    return DebugInfo(frame.f_code.co_filename.rsplit("/", 1)[-1], frame.f_lineno)


# ---------------------------------------------------------------------------
# Per-rank API
# ---------------------------------------------------------------------------


class RankContext:
    """The MPI-like API each rank program receives."""

    def __init__(self, world: "World", rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.nranks
        self.space = world.spaces[rank]

    # -- memory -----------------------------------------------------------------

    def alloc(
        self,
        name: str,
        count: int,
        dtype: Datatype = BYTE,
        kind: RegionKind = RegionKind.HEAP,
        *,
        rma_hint: bool = False,
    ) -> Buffer:
        """Allocate ``count`` elements of ``dtype`` (zeroed).

        ``rma_hint=True`` marks the region as may-alias-RMA upfront, the
        way a static alias analysis would for a buffer that is passed to
        a one-sided call later in the program.  Buffers are also marked
        lazily at their first Put/Get use.
        """
        region = self.space.alloc(name, count * dtype.extent, kind)
        region.may_alias_rma = rma_hint
        return Buffer(region, dtype)

    def stack_alloc(
        self, name: str, count: int, dtype: Datatype = BYTE, *, rma_hint: bool = False
    ) -> Buffer:
        """A stack array — invisible to the MUST-RMA model's TSan."""
        return self.alloc(name, count, dtype, RegionKind.STACK, rma_hint=rma_hint)

    def free(self, buf: Buffer) -> None:
        self.space.free(buf.region)

    # -- local accesses (instrumented) --------------------------------------------

    def load(
        self, buf: Buffer, off: int = 0, count: int = 1, *, debug: Optional[DebugInfo] = None
    ) -> np.ndarray:
        """Instrumented Load of ``count`` consecutive elements."""
        iv = buf.interval(off, count)
        self._world._local(self.rank, iv, AccessType.LOCAL_READ,
                           debug or _caller_debug(), buf.region)
        return buf.np[off] if count == 1 else buf.np[off : off + count].copy()

    def store(
        self,
        buf: Buffer,
        off: int,
        value: Any,
        count: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """Instrumented Store of ``count`` consecutive elements."""
        iv = buf.interval(off, count)
        self._world._local(self.rank, iv, AccessType.LOCAL_WRITE,
                           debug or _caller_debug(), buf.region)
        if count == 1:
            buf.np[off] = value
        else:
            buf.np[off : off + count] = value

    def compute(self, units: float) -> None:
        """Charge pure computation to this rank's simulated clock."""
        self._world.clock.charge_compute(self.rank, units)

    # -- windows -------------------------------------------------------------------

    def win_allocate(
        self, name: str, count: int, dtype: Datatype = BYTE
    ) -> _Token:
        """Collective: expose ``count`` elements of ``dtype``.  ``yield`` it.

        Like ``MPI_Win_allocate``: the window memory is fresh heap-like
        memory owned by the window.
        """
        return _Token("win_allocate", (name, count, dtype))

    def win_create(self, name: str, buf: Buffer) -> _Token:
        """Collective: expose an *existing* buffer as a window.  ``yield`` it.

        Like ``MPI_Win_create``: the exposed memory keeps its original
        provenance — exposing a stack array leaves it invisible to
        ThreadSanitizer-based tools (the paper's §5.2 MUST-RMA blind
        spot).
        """
        return _Token("win_create", (name, buf))

    def win_free(self, win: Window) -> _Token:
        """Collective: free the window.  ``yield`` it."""
        return _Token("win_free", (win.wid,))

    def barrier(self) -> _Token:
        """Collective MPI_Barrier.  ``yield`` it."""
        return _Token("barrier", ())

    def win_fence(self, win: Window) -> _Token:
        """Collective MPI_Win_fence: active-target epoch boundary.
        ``yield`` it.  Completes all operations on the window and opens
        the next access/exposure epoch."""
        return _Token("fence", (win.wid,))

    def allreduce(self, value: float, op: str = "sum") -> _Token:
        """Collective MPI_Allreduce (sum/max/min).  ``yield`` it.

        Synchronizes like a barrier (it is one, semantically) and hands
        every rank the reduced value.
        """
        return _Token("allreduce", (value, op))

    # -- epochs (not collective; take effect immediately) ----------------------------

    def win_lock_all(self, win: Window) -> None:
        self._world._lock_all(self.rank, win)

    def win_unlock_all(self, win: Window) -> None:
        self._world._unlock_all(self.rank, win)

    def win_lock(self, win: Window, target: int, *, exclusive: bool = False) -> None:
        """MPI_Win_lock: per-target passive lock (shared or exclusive).

        Exclusive epochs on the same (window, target) are serialized by
        the MPI library, which detectors with lock support exploit: two
        accesses from different exclusive epochs never race.
        """
        self._world._lock(self.rank, win, target, exclusive)

    def win_unlock(self, win: Window, target: int) -> None:
        """MPI_Win_unlock: close the per-target epoch (completes its ops)."""
        self._world._unlock(self.rank, win, target)

    def win_post(self, win: Window, group: Optional[Sequence[int]] = None) -> None:
        """MPI_Win_post: open an exposure epoch for ``group`` (PSCW).

        The simulator does not block: post/start pairing is the
        program's responsibility (schedule post before the matching
        start with a ``yield None`` pass, as real codes order them with
        the underlying handshake).
        """
        self._world._pscw_post(self.rank, win)

    def win_start(self, win: Window, group: Optional[Sequence[int]] = None) -> None:
        """MPI_Win_start: open a PSCW access epoch towards ``group``."""
        self._world._pscw_start(self.rank, win)

    def win_complete(self, win: Window) -> None:
        """MPI_Win_complete: close the PSCW access epoch (completes ops)."""
        self._world._pscw_complete(self.rank, win)

    def win_wait(self, win: Window) -> None:
        """MPI_Win_wait: close the exposure epoch opened by win_post."""
        self._world._pscw_wait(self.rank, win)

    def win_flush_all(self, win: Window) -> None:
        self._world._flush(self.rank, win, all_targets=True)

    def win_flush(self, win: Window, target: int) -> None:
        # per-target flush: same epoch bookkeeping; detectors see the
        # same event (the §6 subtlety is about *tools*, not the runtime)
        self._world._flush(self.rank, win, all_targets=False)

    # -- one-sided operations ----------------------------------------------------------

    def put(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        count: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Put: write ``count`` elements of ``buf`` to the target window."""
        self._world._rma(
            "put", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(),
        )

    def get(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        count: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Get: read ``count`` elements from the target window into ``buf``."""
        self._world._rma(
            "get", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(),
        )

    def get_accumulate(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        result: Buffer,
        off: int = 0,
        result_off: int = 0,
        count: int = 1,
        op: str = "sum",
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Get_accumulate: atomic fetch-and-op on the target window.

        The old window contents land in ``result`` while ``buf`` is
        combined in — one atomic element-wise step, so it composes with
        other same-``op`` accumulates without racing.  ``op="no_op"``
        gives MPI_Fetch_and_op's pure atomic read.
        """
        self._world._rma(
            "get_accumulate", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(), accum_op=op, result=result,
            result_off=result_off,
        )

    def fetch_and_op(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        result: Buffer,
        op: str = "sum",
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Fetch_and_op: the single-element fast path of get_accumulate."""
        self.get_accumulate(win, target, disp, buf, result, 0, 0, 1, op,
                            debug=debug or _caller_debug())

    def put_vector(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        blocks: int = 1,
        blocklen: int = 1,
        stride: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Put with a vector derived datatype.

        Writes ``blocks`` blocks of ``blocklen`` elements from the
        contiguous origin buffer into the target window at element
        stride ``stride`` — one network transaction whose target
        footprint is strided, exactly the access pattern a
        ``MPI_Type_vector`` produces.
        """
        self._vector_rma("put", win, target, disp, buf, off, blocks,
                         blocklen, stride, debug or _caller_debug())

    def get_vector(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        blocks: int = 1,
        blocklen: int = 1,
        stride: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Get with a vector derived datatype (see put_vector)."""
        self._vector_rma("get", win, target, disp, buf, off, blocks,
                         blocklen, stride, debug or _caller_debug())

    def _vector_rma(self, op, win, target, disp, buf, off, blocks,
                    blocklen, stride, debug) -> None:
        if blocks < 1 or blocklen < 1 or stride < blocklen:
            raise RmaUsageError(
                f"rank {self.rank}: invalid vector shape blocks={blocks} "
                f"blocklen={blocklen} stride={stride}"
            )
        for b in range(blocks):
            self._world._rma(
                op, self.rank, target, win, disp + b * stride, buf,
                off + b * blocklen, blocklen, debug,
                charge_latency=(b == 0),  # one transaction, many blocks
            )

    def rput(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        count: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> Request:
        """MPI_Rput: a put with a request handle; see :class:`Request`."""
        return self._world._rma(
            "put", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(), want_request=True,
        )

    def rget(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        count: int = 1,
        *,
        debug: Optional[DebugInfo] = None,
    ) -> Request:
        """MPI_Rget: a get with a request handle; see :class:`Request`."""
        return self._world._rma(
            "get", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(), want_request=True,
        )

    def wait(self, request: Request) -> None:
        """MPI_Wait: completes the request *locally* (origin side only)."""
        if request.completed:
            raise RmaUsageError(
                f"rank {self.rank}: MPI_Wait on an already-completed request"
            )
        if request.rank != self.rank:
            raise RmaUsageError(
                f"rank {self.rank}: waiting on rank {request.rank}'s request"
            )
        request.completed = True
        self._world.interposition.request_complete(
            request.rank, request.wid, request.origin_access
        )

    def accumulate(
        self,
        win: Window,
        target: int,
        disp: int,
        buf: Buffer,
        off: int = 0,
        count: int = 1,
        op: str = "sum",
        *,
        debug: Optional[DebugInfo] = None,
    ) -> None:
        """MPI_Accumulate: element-wise atomic update of the target window.

        The paper's §2.1 atomicity property: accumulates are atomic at
        the datatype level, so concurrent same-``op`` accumulates to the
        same location are well-defined (and race-free).  ``op`` is one of
        ``sum``, ``max``, ``min``, ``replace``.
        """
        self._world._rma(
            "accumulate", self.rank, target, win, disp, buf, off, count,
            debug or _caller_debug(), accum_op=op,
        )


# ---------------------------------------------------------------------------
# The world
# ---------------------------------------------------------------------------

Program = Callable[..., Generator[Optional[_Token], Any, None]]


class World:
    """``nranks`` simulated MPI processes plus detectors and cost model."""

    def __init__(
        self,
        nranks: int,
        detectors: Sequence[DetectorProtocol] = (),
        *,
        cost_params: Optional[CostParams] = None,
        trace: Union[bool, TraceLog] = False,
    ) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.spaces = [AddressSpace(r) for r in range(nranks)]
        self.clock = SimClock(nranks, cost_params)
        # ``trace`` may be a ready-made log (e.g. a StreamingTraceLog that
        # writes events to disk as they happen) or just a bool
        if isinstance(trace, TraceLog):
            self.trace_log: Optional[TraceLog] = trace
        else:
            self.trace_log = TraceLog() if trace else None
        self.interposition = Interposition(detectors, self.clock, self.trace_log)
        self.epochs = EpochTracker()
        self.windows: Dict[int, Window] = {}
        self._next_wid = 0
        # global exclusive-lock epoch ids per (wid, target)
        self._excl_epochs: Dict[tuple, int] = {}
        # per-target locks currently held, per (rank, wid)
        self._locks_held: Dict[tuple, int] = {}
        # PSCW epochs open per (rank, wid): an access epoch (start..
        # complete) and an exposure epoch (post..wait) may coexist on
        # one rank; detectors see a single logical epoch span
        self._pscw_open: Dict[tuple, int] = {}

    # -- runtime internals (called from RankContext) ---------------------------------

    def _local(
        self,
        rank: int,
        interval: Interval,
        type: AccessType,
        debug: DebugInfo,
        region: Region,
    ) -> None:
        self.clock.charge_local(rank, len(interval))
        access = MemoryAccess(interval, type, debug, origin=rank)
        self.interposition.local_access(rank, access, region)

    def _lock_all(self, rank: int, win: Window) -> None:
        win._check_live()
        self.epochs.lock_all(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self.interposition.epoch_start(rank, win.wid)

    def _unlock_all(self, rank: int, win: Window) -> None:
        win._check_live()
        self.epochs.unlock_all(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self.interposition.epoch_end(rank, win.wid)

    def _lock(self, rank: int, win: Window, target: int, exclusive: bool) -> None:
        win._check_live()
        if not 0 <= target < self.nranks:
            raise RmaUsageError(f"rank {rank}: invalid lock target {target}")
        self.epochs.lock(rank, win.wid, target, exclusive)
        if exclusive:
            key = (win.wid, target)
            self._excl_epochs[key] = self._excl_epochs.get(key, 0) + 1
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        # detectors see one logical access epoch per rank: opened by the
        # first lock taken, closed by the last unlock released
        key = (rank, win.wid)
        held = self._locks_held.get(key, 0)
        self._locks_held[key] = held + 1
        if held == 0:
            self.interposition.epoch_start(rank, win.wid)

    def _unlock(self, rank: int, win: Window, target: int) -> None:
        win._check_live()
        self.epochs.unlock(rank, win.wid, target)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        key = (rank, win.wid)
        held = self._locks_held.get(key, 1)
        self._locks_held[key] = held - 1
        if held == 1:
            self.interposition.epoch_end(rank, win.wid)

    def _pscw_epoch_open(self, rank: int, wid: int) -> None:
        key = (rank, wid)
        held = self._pscw_open.get(key, 0)
        self._pscw_open[key] = held + 1
        if held == 0:
            self.interposition.epoch_start(rank, wid)

    def _pscw_epoch_close(self, rank: int, wid: int) -> None:
        key = (rank, wid)
        held = self._pscw_open.get(key, 1)
        self._pscw_open[key] = held - 1
        if held == 1:
            self.interposition.epoch_end(rank, wid)

    def _pscw_start(self, rank: int, win: Window) -> None:
        win._check_live()
        self.epochs.start(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self._pscw_epoch_open(rank, win.wid)

    def _pscw_complete(self, rank: int, win: Window) -> None:
        win._check_live()
        self.epochs.complete(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self._pscw_epoch_close(rank, win.wid)

    def _pscw_post(self, rank: int, win: Window) -> None:
        # an exposure epoch is the window side of PSCW: local accesses to
        # the exposed memory are epoch-scoped, exactly like an access
        # epoch, so detectors see the same epoch_start/epoch_end events
        win._check_live()
        self.epochs.post(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self._pscw_epoch_open(rank, win.wid)

    def _pscw_wait(self, rank: int, win: Window) -> None:
        win._check_live()
        self.epochs.wait(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self._pscw_epoch_close(rank, win.wid)

    def _flush(self, rank: int, win: Window, *, all_targets: bool) -> None:
        win._check_live()
        self.epochs.flush(rank, win.wid)
        self.clock.charge(rank, self.clock.params.sync_base_ns, "sync")
        self.interposition.flush(rank, win.wid, all_targets=all_targets)

    def _rma(
        self,
        op: str,
        rank: int,
        target: int,
        win: Window,
        disp: int,
        buf: Buffer,
        off: int,
        count: int,
        debug: DebugInfo,
        accum_op: Optional[str] = None,
        result: Optional[Buffer] = None,
        result_off: int = 0,
        charge_latency: bool = True,
        want_request: bool = False,
    ) -> Optional[Request]:
        if not 0 <= target < self.nranks:
            raise RmaUsageError(f"rank {rank}: invalid target {target}")
        if buf.dtype.extent != win.disp_unit.extent:
            raise RmaUsageError(
                f"rank {rank}: buffer dtype {buf.dtype} does not match "
                f"window disp unit {win.disp_unit}"
            )
        if not self.epochs.can_access(rank, win.wid, target):
            from .errors import EpochError

            raise EpochError(
                f"rank {rank}: one-sided operation on window {win.wid} "
                f"towards {target} outside any epoch or lock"
            )
        self.epochs.note_op(rank, win.wid)

        target_iv = win.target_interval(target, disp, count)
        origin_iv = buf.interval(off, count)
        nbytes = count * win.disp_unit.extent
        gen = self.epochs.flush_gen(rank, win.wid)

        if op == "put":
            origin_type, target_type = AccessType.RMA_READ, AccessType.RMA_WRITE
        elif op == "get":
            origin_type, target_type = AccessType.RMA_WRITE, AccessType.RMA_READ
        elif op == "accumulate":
            origin_type, target_type = AccessType.RMA_READ, AccessType.RMA_WRITE
            if accum_op not in ("sum", "max", "min", "replace"):
                raise RmaUsageError(
                    f"rank {rank}: unknown accumulate op {accum_op!r}"
                )
        elif op == "get_accumulate":
            origin_type, target_type = AccessType.RMA_READ, AccessType.RMA_WRITE
            if accum_op not in ("sum", "max", "min", "replace", "no_op"):
                raise RmaUsageError(
                    f"rank {rank}: unknown get_accumulate op {accum_op!r}"
                )
            if result is None:
                raise RmaUsageError(
                    f"rank {rank}: get_accumulate needs a result buffer"
                )
            if result.dtype.extent != win.disp_unit.extent:
                raise RmaUsageError(
                    f"rank {rank}: result dtype {result.dtype} does not "
                    f"match window disp unit {win.disp_unit}"
                )
        else:  # pragma: no cover
            raise ValueError(op)

        excl = None
        if self.epochs.target_lock_exclusive(rank, win.wid, target):
            excl = self._excl_epochs.get((win.wid, target))
        acc = accum_op if op in ("accumulate", "get_accumulate") else None
        origin_access = MemoryAccess(
            origin_iv, origin_type, debug, rank, 0, gen, None, excl
        )
        target_access = MemoryAccess(
            target_iv, target_type, debug, rank, 0, gen, acc, excl
        )

        # mark alias information for the filter
        buf.region.may_alias_rma = True
        win.region_of(target).may_alias_rma = True

        # eager data movement (values are sequentially consistent)
        tmem = win.memory(target)
        bmem = buf.np
        if op == "put":
            tmem[disp : disp + count] = bmem[off : off + count]
        elif op == "get":
            bmem[off : off + count] = tmem[disp : disp + count]
        else:  # (get_)accumulate: element-wise atomic read-modify-write
            if op == "get_accumulate":
                assert result is not None
                rmem = result.np
                rmem[result_off : result_off + count] = tmem[disp : disp + count]
                result.region.may_alias_rma = True
            src = bmem[off : off + count]
            dst = tmem[disp : disp + count]
            if accum_op == "sum":
                dst += src
            elif accum_op == "max":
                np.maximum(dst, src, out=dst)
            elif accum_op == "min":
                np.minimum(dst, src, out=dst)
            elif accum_op == "replace":
                dst[:] = src
            # no_op: fetch only, leave the target unchanged

        if charge_latency:
            self.clock.charge_rma(rank, nbytes)
        else:
            self.clock.charge(rank, nbytes * self.clock.params.ns_per_byte,
                              "comm")
        self.interposition.rma(
            op, rank, target, win.wid, origin_access, target_access,
            buf.region, win.region_of(target), nbytes,
        )
        if op == "get_accumulate":
            # the fetch half: an atomic read of the window lands in the
            # result buffer — both sides are part of the same atomic op
            # (same accum_op tag), so they compose with other accumulates
            # and with this origin's own later calls (accumulate ordering)
            assert result is not None
            result_iv = result.interval(result_off, count)
            fetch_origin = MemoryAccess(
                result_iv, AccessType.RMA_WRITE, debug, rank, 0, gen,
                accum_op, excl,
            )
            fetch_target = MemoryAccess(
                target_iv, AccessType.RMA_READ, debug, rank, 0, gen,
                accum_op, excl,
            )
            self.interposition.rma(
                "get_accumulate_fetch", rank, target, win.wid,
                fetch_origin, fetch_target, result.region,
                win.region_of(target), nbytes,
            )
        if want_request:
            return Request(rank, win.wid, origin_access)
        return None

    # -- collectives -------------------------------------------------------------------

    def _do_win_allocate(self, tokens: List[_Token]) -> List[Window]:
        names = {t.payload[0] for t in tokens}
        counts = {t.payload[1] for t in tokens}
        dtypes = {t.payload[2].name for t in tokens}
        if len(names) != 1 or len(dtypes) != 1:
            raise CollectiveMismatchError(
                f"win_allocate mismatch: names={names}, dtypes={dtypes}"
            )
        if len(counts) != 1:
            # MPI allows different sizes per rank; we do too
            pass
        name = tokens[0].payload[0]
        dtype = tokens[0].payload[2]
        regions = [
            self.spaces[r].alloc(
                f"win:{name}", tokens[r].payload[1] * dtype.extent, RegionKind.WINDOW
            )
            for r in range(self.nranks)
        ]
        for region in regions:
            region.may_alias_rma = True
        wid = self._next_wid
        self._next_wid += 1
        window = Window(wid, name, regions, dtype)
        self.windows[wid] = window
        self.interposition.win_create(window)
        return [window] * self.nranks

    def _do_win_create(self, tokens: List[_Token]) -> List[Window]:
        names = {t.payload[0] for t in tokens}
        if len(names) != 1:
            raise CollectiveMismatchError(f"win_create mismatch: names={names}")
        bufs: List[Buffer] = [t.payload[1] for t in tokens]
        dtypes = {b.dtype.name for b in bufs}
        if len(dtypes) != 1:
            raise CollectiveMismatchError(f"win_create mismatch: dtypes={dtypes}")
        regions = [b.region for b in bufs]
        for r, region in enumerate(regions):
            if region.rank != r:
                raise RmaUsageError(
                    f"rank {r} passed rank {region.rank}'s buffer to win_create"
                )
            region.may_alias_rma = True
        wid = self._next_wid
        self._next_wid += 1
        window = Window(wid, tokens[0].payload[0], regions, bufs[0].dtype)
        self.windows[wid] = window
        self.interposition.win_create(window)
        return [window] * self.nranks

    def _do_win_free(self, tokens: List[_Token]) -> List[None]:
        wids = {t.payload[0] for t in tokens}
        if len(wids) != 1:
            raise CollectiveMismatchError(f"win_free mismatch: {wids}")
        wid = tokens[0].payload[0]
        window = self.windows[wid]
        self.epochs.assert_all_closed(wid, self.nranks)
        window.freed = True
        self.interposition.win_free(wid)
        return [None] * self.nranks

    def _do_barrier(self, tokens: List[_Token]) -> List[None]:
        self.clock.synchronize(list(range(self.nranks)))
        self.interposition.barrier()
        return [None] * self.nranks

    def _do_fence(self, tokens: List[_Token]) -> List[None]:
        wids = {t.payload[0] for t in tokens}
        if len(wids) != 1:
            raise CollectiveMismatchError(f"fence window mismatch: {wids}")
        wid = wids.pop()
        window = self.windows[wid]
        window._check_live()
        for rank in range(self.nranks):
            self.epochs.fence(rank, wid)
        self.clock.synchronize(list(range(self.nranks)))
        self.interposition.fence(wid, self.nranks)
        return [None] * self.nranks

    def _do_allreduce(self, tokens: List[_Token]) -> List[float]:
        ops = {t.payload[1] for t in tokens}
        if len(ops) != 1:
            raise CollectiveMismatchError(f"allreduce op mismatch: {ops}")
        op = ops.pop()
        values = [t.payload[0] for t in tokens]
        if op == "sum":
            result = sum(values)
        elif op == "max":
            result = max(values)
        elif op == "min":
            result = min(values)
        else:
            raise CollectiveMismatchError(f"unknown allreduce op {op!r}")
        self.clock.synchronize(list(range(self.nranks)))
        self.interposition.barrier()  # reduce synchronizes like a barrier
        return [result] * self.nranks

    _COLLECTIVES = {
        "win_allocate": _do_win_allocate,
        "win_create": _do_win_create,
        "win_free": _do_win_free,
        "barrier": _do_barrier,
        "fence": _do_fence,
        "allreduce": _do_allreduce,
    }

    # -- execution ----------------------------------------------------------------------

    def run(self, program: Program, *args: Any, **kwargs: Any) -> None:
        """Run ``program(ctx, *args, **kwargs)`` on every rank to completion."""
        contexts = [RankContext(self, r) for r in range(self.nranks)]
        gens: List[Optional[Generator]] = [
            program(ctx, *args, **kwargs) for ctx in contexts
        ]
        self.run_generators(gens)

    def run_generators(self, gens: List[Optional[Generator]]) -> None:
        """Drive heterogeneous per-rank generators (SPMD or MPMD)."""
        if len(gens) != self.nranks:
            raise ValueError(f"need {self.nranks} programs, got {len(gens)}")
        send_values: List[Any] = [None] * self.nranks
        pending: List[Optional[_Token]] = [None] * self.nranks
        live = [g is not None for g in gens]

        while any(live):
            # advance every live rank that is not parked at a collective
            for r in range(self.nranks):
                if not live[r] or pending[r] is not None:
                    continue
                try:
                    token = gens[r].send(send_values[r])  # type: ignore[union-attr]
                except StopIteration:
                    live[r] = False
                    continue
                send_values[r] = None
                if token is None:
                    continue  # plain cooperative yield: runnable again next pass
                if not isinstance(token, _Token):
                    raise MpiSimError(
                        f"rank {r} yielded {token!r}; yield collective tokens or None"
                    )
                pending[r] = token

            if any(live[r] and pending[r] is None for r in range(self.nranks)):
                continue  # somebody is still runnable; keep advancing

            waiting = [r for r in range(self.nranks) if live[r]]
            if not waiting:
                break  # everyone finished
            if len(waiting) < self.nranks:
                kinds = sorted({pending[r].kind for r in waiting})  # type: ignore[union-attr]
                raise DeadlockError(
                    f"ranks {waiting} wait on collective(s) {kinds} but other "
                    "ranks already terminated"
                )
            kinds = {pending[r].kind for r in waiting}  # type: ignore[union-attr]
            if len(kinds) != 1:
                raise CollectiveMismatchError(f"mismatched collectives: {kinds}")
            handler = self._COLLECTIVES[kinds.pop()]
            results = handler(self, [pending[r] for r in waiting])  # type: ignore[arg-type]
            for r in waiting:
                send_values[r] = results[r]
                pending[r] = None

        self.interposition.finalize()

    # -- reporting -----------------------------------------------------------------------

    @property
    def detectors(self) -> List[DetectorProtocol]:
        return self.interposition.detectors

    def analysis_wall(self, name: str) -> float:
        return self.interposition.analysis_wall[name]


def run_spmd(
    program: Program,
    nranks: int,
    detectors: Sequence[DetectorProtocol] = (),
    *args: Any,
    cost_params: Optional[CostParams] = None,
    trace: Union[bool, TraceLog] = False,
    **kwargs: Any,
) -> World:
    """Convenience wrapper: build a world, run ``program``, return the world."""
    world = World(nranks, detectors, cost_params=cost_params, trace=trace)
    world.run(program, *args, **kwargs)
    return world

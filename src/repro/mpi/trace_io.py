"""Trace persistence and offline replay.

MC-Checker-style workflows separate *recording* from *analysis*: the
profiling layer writes the execution trace to disk, and the analysis
runs post mortem — possibly repeatedly, with different tools.  This
module provides exactly that for the simulated runtime:

* :func:`save_trace` / :func:`load_trace` — JSON-lines serialization of
  a :class:`TraceLog` (every access with its full metadata, every sync
  event);
* :func:`replay_trace` — feed a recorded trace into any detector, as if
  the events were live.  ``replay_trace(load_trace(p), OurDetector())``
  produces byte-for-byte the verdicts of the original run.

Record with ``World(..., trace=True)``; the world's trace log carries
the rank count needed to rebuild collective events.

Two on-disk formats exist: the v1 JSON-lines format written here, and
the compact chunked-binary ``repro-trace-v2`` of
:mod:`repro.pipeline.format` (pass ``format="binary"``).
:func:`load_trace` auto-detects either and raises
:class:`~repro.mpi.errors.TraceFormatError` — naming the file and line —
on truncated or corrupt input.  For analysis that should not hold the
whole trace in memory, use the streaming pipeline
(:func:`repro.pipeline.analyze_trace`) instead of
:func:`load_trace` + :func:`replay_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..intervals import AccessType, DebugInfo, Interval, MemoryAccess
from .interposition import DetectorProtocol
from .memory import RegionInfo, RegionKind
from .trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceEvent, TraceLog

__all__ = ["save_trace", "load_trace", "replay_trace"]

_FORMAT = "repro-trace-v1"


# -- serialization -----------------------------------------------------------


def _access_to_dict(acc: MemoryAccess) -> dict:
    return {
        "lo": acc.interval.lo,
        "hi": acc.interval.hi,
        "type": acc.type.name,
        "file": acc.debug.filename,
        "line": acc.debug.line,
        "origin": acc.origin,
        "flush_gen": acc.flush_gen,
        "accum_op": acc.accum_op,
        "excl_epoch": acc.excl_epoch,
    }


def _access_from_dict(d: dict) -> MemoryAccess:
    return MemoryAccess(
        Interval(d["lo"], d["hi"]),
        AccessType[d["type"]],
        DebugInfo(d["file"], d["line"]),
        d["origin"],
        0,
        d["flush_gen"],
        d.get("accum_op"),
        d.get("excl_epoch"),
    )


def _region_to_dict(info: RegionInfo) -> dict:
    return {"kind": info.kind.value, "rma": info.may_alias_rma}


def _region_from_dict(d: dict) -> RegionInfo:
    return RegionInfo(RegionKind(d["kind"]), d["rma"])


def _event_to_dict(event: TraceEvent) -> dict:
    if isinstance(event, LocalEvent):
        return {
            "ev": "local",
            "seq": event.seq,
            "rank": event.rank,
            "access": _access_to_dict(event.access),
            "region": _region_to_dict(event.region),
        }
    if isinstance(event, RmaEvent):
        return {
            "ev": "rma",
            "seq": event.seq,
            "rank": event.rank,
            "op": event.op,
            "target": event.target,
            "wid": event.wid,
            "origin_access": _access_to_dict(event.origin_access),
            "target_access": _access_to_dict(event.target_access),
            "origin_region": _region_to_dict(event.origin_region),
            "target_region": _region_to_dict(event.target_region),
            "nbytes": event.nbytes,
        }
    if isinstance(event, SyncEvent):
        return {
            "ev": "sync",
            "seq": event.seq,
            "rank": event.rank,
            "kind": event.kind.value,
            "wid": event.wid,
        }
    raise TypeError(f"unknown trace event {event!r}")  # pragma: no cover


def _event_from_dict(d: dict) -> TraceEvent:
    kind = d["ev"]
    if kind == "local":
        return LocalEvent(d["seq"], d["rank"], _access_from_dict(d["access"]),
                          _region_from_dict(d["region"]))
    if kind == "rma":
        return RmaEvent(
            d["seq"], d["rank"], d["op"], d["target"], d["wid"],
            _access_from_dict(d["origin_access"]),
            _access_from_dict(d["target_access"]),
            _region_from_dict(d["origin_region"]),
            _region_from_dict(d["target_region"]),
            d["nbytes"],
        )
    if kind == "sync":
        return SyncEvent(d["seq"], d["rank"], SyncKind(d["kind"]), d["wid"])
    raise ValueError(f"unknown trace record {kind!r}")


def save_trace(
    log: TraceLog, path: Union[str, Path], *, nranks: int,
    format: str = "json",
) -> None:
    """Write a trace — v1 JSON lines or the v2 chunked binary format."""
    path = Path(path)
    if format in ("binary", "repro-trace-v2"):
        from ..pipeline.format import BinaryTraceWriter

        with BinaryTraceWriter(path, nranks=nranks) as writer:
            for event in log.events:
                writer.write(event)
        return
    if format not in ("json", _FORMAT):
        raise ValueError(f"unknown trace format {format!r} (json or binary)")
    with path.open("w") as fh:
        json.dump({"format": _FORMAT, "nranks": nranks,
                   "events": len(log.events)}, fh)
        fh.write("\n")
        for event in log.events:
            json.dump(_event_to_dict(event), fh, separators=(",", ":"))
            fh.write("\n")


def load_trace(path: Union[str, Path]) -> "LoadedTrace":
    """Read a trace written by :func:`save_trace` (either format).

    Corrupt, truncated, or non-trace files raise
    :class:`~repro.mpi.errors.TraceFormatError` (a :class:`ValueError`)
    pointing at the offending file and line.
    """
    from ..pipeline.format import TraceReader

    reader = TraceReader(path)
    events = list(reader)
    log = TraceLog()
    log.events = events
    log._seq = max((e.seq for e in events), default=0)
    return LoadedTrace(log, reader.nranks)


class LoadedTrace:
    """A deserialized trace plus the world metadata replay needs."""

    def __init__(self, log: TraceLog, nranks: int) -> None:
        self.log = log
        self.nranks = nranks

    def __len__(self) -> int:
        return len(self.log)


class _ReplayWindow:
    """Just enough of a Window for detector on_win_create hooks."""

    def __init__(self, wid: int, nranks: int) -> None:
        self.wid = wid
        self.name = f"replay-{wid}"
        self.regions = [None] * nranks


def replay_trace(
    trace: LoadedTrace, detector: DetectorProtocol
) -> DetectorProtocol:
    """Drive a detector with a recorded trace (offline analysis).

    Events are dispatched exactly like the live interposition layer
    does; the detector's verdicts and statistics afterwards match a live
    run over the same execution.  The event→hook mapping is shared with
    the sharded pipeline workers (:mod:`repro.pipeline.shard`), so
    serial replay is also the pipeline's verdict-parity baseline.
    """
    from ..pipeline.shard import dispatch_event

    nranks = trace.nranks
    for event in trace.log.events:
        dispatch_event(detector, event, nranks)
    detector.finalize()
    return detector

"""Execution trace records.

The on-the-fly detectors consume events directly from the interposition
layer; the *post-mortem* detector (MC-CChecker model) and several tests
need the whole execution recorded.  :class:`TraceLog` stores a flat,
globally ordered event list; recording is optional (``World(trace=True)``)
because large app runs do not need it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from ..intervals import MemoryAccess
from .memory import RegionInfo, RegionKind

__all__ = [
    "SyncKind",
    "TraceEvent",
    "LocalEvent",
    "RmaEvent",
    "SyncEvent",
    "TraceLog",
    "StreamingTraceLog",
]


class SyncKind(enum.Enum):
    WIN_CREATE = "win_create"
    WIN_FREE = "win_free"
    LOCK_ALL = "lock_all"
    UNLOCK_ALL = "unlock_all"
    FLUSH = "flush"
    FLUSH_ALL = "flush_all"
    FENCE = "fence"
    BARRIER = "barrier"


@dataclass(frozen=True)
class TraceEvent:
    """Base: every event has a global sequence number and an issuing rank."""

    seq: int
    rank: int


@dataclass(frozen=True)
class LocalEvent(TraceEvent):
    """An instrumentable Load/Store."""

    access: MemoryAccess
    region: RegionInfo


@dataclass(frozen=True)
class RmaEvent(TraceEvent):
    """One MPI_Put / MPI_Get: both sides' accesses, already resolved."""

    op: str  # "put" | "get"
    target: int
    wid: int
    origin_access: MemoryAccess
    target_access: MemoryAccess
    origin_region: RegionInfo
    # default: plain window memory (MPI_Win_allocate)
    target_region: RegionInfo = RegionInfo(RegionKind.WINDOW, True)
    nbytes: int = 0


@dataclass(frozen=True)
class SyncEvent(TraceEvent):
    """A synchronization call (rank == -1 for whole-world barriers)."""

    kind: SyncKind
    wid: int = -1


class TraceLog:
    """Append-only global event log."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_rank(self, rank: int) -> List[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def rma_events(self) -> List[RmaEvent]:
        return [e for e in self.events if isinstance(e, RmaEvent)]


class StreamingTraceLog(TraceLog):
    """A trace log that forwards events to a sink instead of keeping them.

    Recording a large run with ``World(trace=True)`` keeps every event in
    memory; passing ``World(trace=StreamingTraceLog(writer.write))``
    instead streams the events straight to a trace writer (see
    :mod:`repro.pipeline.format`) in constant memory.  ``events`` stays
    empty by design — post-hoc consumers should read the written file.
    """

    def __init__(self, sink) -> None:
        super().__init__()
        self._sink = sink
        self._count = 0

    def append(self, event: TraceEvent) -> None:
        self._sink(event)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

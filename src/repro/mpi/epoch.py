"""Passive-target epoch state machine.

The paper focuses on the Passive Target synchronization mode: an origin
opens an access epoch on a window with ``MPI_Win_lock_all`` and closes
it with ``MPI_Win_unlock_all``; ``MPI_Win_flush_all`` (or per-target
``MPI_Win_flush``) completes outstanding operations *inside* the epoch
without closing it.  This module tracks, per (rank, window):

* whether an epoch is open (one-sided calls outside an epoch are usage
  errors the simulator reports immediately),
* how many one-sided operations the rank issued in the current epoch,
* the rank's *flush generation* — bumped by each flush, recorded on
  every access so detectors with precise flush support (§6 discussion)
  can exempt completed-vs-later pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import EpochError

__all__ = ["EpochTracker"]


@dataclass
class _EpochState:
    active: bool = False
    mode: str = ""  # "lock" | "fence" | "pscw" when active
    ops_issued: int = 0
    flush_gen: int = 0
    epochs_completed: int = 0
    # per-target passive locks held by this rank: target -> exclusive?
    target_locks: Dict[int, bool] = field(default_factory=dict)
    # PSCW exposure epoch (MPI_Win_post .. MPI_Win_wait) open on this rank
    exposed: bool = False


class EpochTracker:
    """All (rank, window) epoch states of one simulated world."""

    def __init__(self) -> None:
        self._state: Dict[Tuple[int, int], _EpochState] = {}

    def _get(self, rank: int, wid: int) -> _EpochState:
        return self._state.setdefault((rank, wid), _EpochState())

    # -- transitions ---------------------------------------------------------

    def lock_all(self, rank: int, wid: int) -> None:
        st = self._get(rank, wid)
        if st.active:
            raise EpochError(
                f"rank {rank}: MPI_Win_lock_all on window {wid} inside an epoch"
            )
        st.active = True
        st.mode = "lock"
        st.ops_issued = 0

    def unlock_all(self, rank: int, wid: int) -> None:
        st = self._get(rank, wid)
        if not st.active or st.mode != "lock":
            raise EpochError(
                f"rank {rank}: MPI_Win_unlock_all on window {wid} without a "
                "passive-target epoch"
            )
        st.active = False
        st.mode = ""
        st.epochs_completed += 1

    def fence(self, rank: int, wid: int) -> None:
        """Active-target sync: completes the previous fence epoch (if
        any) and opens the next one.  Mixing with passive-target
        synchronization (lock_all or per-target locks) is an error."""
        st = self._get(rank, wid)
        if st.active and st.mode in ("lock", "pscw"):
            raise EpochError(
                f"rank {rank}: MPI_Win_fence on window {wid} inside a "
                f"{'passive-target' if st.mode == 'lock' else 'PSCW'} epoch"
            )
        if st.target_locks:
            raise EpochError(
                f"rank {rank}: MPI_Win_fence on window {wid} while holding "
                f"per-target locks on {sorted(st.target_locks)}"
            )
        if st.active:
            st.epochs_completed += 1
        st.active = True
        st.mode = "fence"
        st.ops_issued = 0

    def start(self, rank: int, wid: int) -> None:
        """MPI_Win_start: open a PSCW *access* epoch (general active
        target).  The matching target group is not modelled — the
        simulator schedules post before start, so the blocking semantics
        of MPI_Win_start never come into play."""
        st = self._get(rank, wid)
        if st.active:
            raise EpochError(
                f"rank {rank}: MPI_Win_start on window {wid} inside an epoch"
            )
        if st.target_locks:
            raise EpochError(
                f"rank {rank}: MPI_Win_start on window {wid} while holding "
                f"per-target locks on {sorted(st.target_locks)}"
            )
        st.active = True
        st.mode = "pscw"
        st.ops_issued = 0

    def complete(self, rank: int, wid: int) -> None:
        """MPI_Win_complete: close the PSCW access epoch."""
        st = self._get(rank, wid)
        if not st.active or st.mode != "pscw":
            raise EpochError(
                f"rank {rank}: MPI_Win_complete on window {wid} without a "
                "PSCW access epoch"
            )
        st.active = False
        st.mode = ""
        st.epochs_completed += 1

    def post(self, rank: int, wid: int) -> None:
        """MPI_Win_post: open a PSCW *exposure* epoch on this rank."""
        st = self._get(rank, wid)
        if st.exposed:
            raise EpochError(
                f"rank {rank}: MPI_Win_post on window {wid} inside an "
                "exposure epoch"
            )
        st.exposed = True

    def wait(self, rank: int, wid: int) -> None:
        """MPI_Win_wait: close the PSCW exposure epoch."""
        st = self._get(rank, wid)
        if not st.exposed:
            raise EpochError(
                f"rank {rank}: MPI_Win_wait on window {wid} without an "
                "exposure epoch"
            )
        st.exposed = False

    def lock(self, rank: int, wid: int, target: int, exclusive: bool) -> None:
        """MPI_Win_lock(target): per-target passive-target epoch."""
        st = self._get(rank, wid)
        if st.active and st.mode == "fence":
            raise EpochError(
                f"rank {rank}: MPI_Win_lock inside a fence epoch on {wid}"
            )
        if st.mode == "lock":
            raise EpochError(
                f"rank {rank}: MPI_Win_lock while lock_all holds window {wid}"
            )
        if st.mode == "pscw":
            raise EpochError(
                f"rank {rank}: MPI_Win_lock inside a PSCW access epoch on {wid}"
            )
        if target in st.target_locks:
            raise EpochError(
                f"rank {rank}: target {target} already locked on window {wid}"
            )
        st.target_locks[target] = exclusive

    def unlock(self, rank: int, wid: int, target: int) -> None:
        st = self._get(rank, wid)
        if target not in st.target_locks:
            raise EpochError(
                f"rank {rank}: MPI_Win_unlock({target}) without a lock on "
                f"window {wid}"
            )
        del st.target_locks[target]
        st.epochs_completed += 1

    def can_access(self, rank: int, wid: int, target: int) -> bool:
        """Is an RMA op from rank to target currently legal?"""
        st = self._get(rank, wid)
        return st.active or target in st.target_locks

    def target_lock_exclusive(self, rank: int, wid: int, target: int) -> Optional[bool]:
        return self._get(rank, wid).target_locks.get(target)

    def flush(self, rank: int, wid: int) -> int:
        """Record a flush; returns the new generation."""
        st = self._get(rank, wid)
        if not st.active and not st.target_locks:
            raise EpochError(
                f"rank {rank}: MPI_Win_flush(_all) on window {wid} without an epoch"
            )
        st.flush_gen += 1
        return st.flush_gen

    def note_op(self, rank: int, wid: int) -> None:
        st = self._get(rank, wid)
        if not st.active and not st.target_locks:
            raise EpochError(
                f"rank {rank}: one-sided operation on window {wid} outside an epoch"
            )
        st.ops_issued += 1

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpointable copy of all epoch states (``repro-ckpt-v1``).

        Keys are flattened to ``"rank,wid"`` strings so the snapshot
        survives JSON as well as pickle round-trips.
        """
        return {
            "%d,%d" % key: {
                "active": st.active,
                "mode": st.mode,
                "ops_issued": st.ops_issued,
                "flush_gen": st.flush_gen,
                "epochs_completed": st.epochs_completed,
                "target_locks": {str(t): x
                                 for t, x in st.target_locks.items()},
                "exposed": st.exposed,
            }
            for key, st in self._state.items()
        }

    def restore(self, snap: dict) -> None:
        """Adopt a :meth:`snapshot`; in-flight epochs resume as-is."""
        state: Dict[Tuple[int, int], _EpochState] = {}
        for key, d in snap.items():
            rank, wid = (int(part) for part in key.split(","))
            state[(rank, wid)] = _EpochState(
                active=d["active"],
                mode=d["mode"],
                ops_issued=d["ops_issued"],
                flush_gen=d["flush_gen"],
                epochs_completed=d["epochs_completed"],
                target_locks={int(t): bool(x)
                              for t, x in d["target_locks"].items()},
                exposed=d.get("exposed", False),
            )
        self._state = state

    # -- queries ---------------------------------------------------------------

    def active(self, rank: int, wid: int) -> bool:
        return self._get(rank, wid).active

    def flush_gen(self, rank: int, wid: int) -> int:
        return self._get(rank, wid).flush_gen

    def ops_in_epoch(self, rank: int, wid: int) -> int:
        return self._get(rank, wid).ops_issued

    def epochs_completed(self, rank: int, wid: int) -> int:
        return self._get(rank, wid).epochs_completed

    def assert_all_closed(self, wid: int, nranks: int) -> None:
        """Raise when a window is freed with a passive epoch still open.

        Fence-mode "epochs" close themselves at every fence, so a window
        may be freed after its final fence.
        """
        for rank in range(nranks):
            st = self._get(rank, wid)
            if st.active and st.mode in ("lock", "pscw"):
                raise EpochError(
                    f"rank {rank}: window {wid} freed with an open epoch"
                )
            if st.target_locks:
                raise EpochError(
                    f"rank {rank}: window {wid} freed with per-target locks "
                    f"held on {sorted(st.target_locks)}"
                )
            if st.exposed:
                raise EpochError(
                    f"rank {rank}: window {wid} freed with an open exposure "
                    "epoch (MPI_Win_wait missing)"
                )

"""RMA windows of the simulated runtime.

A window is created collectively (``MPI_Win_allocate``): every rank
exposes one region of its own address space, and any rank may then reach
``(target_rank, offset)`` inside the exposed region during an epoch.
Displacement units follow the datatype the window was allocated with,
like the real API's ``disp_unit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..intervals import Interval
from .datatypes import BYTE, Datatype
from .errors import OutOfWindowError, RmaUsageError
from .memory import Region

__all__ = ["Window"]


@dataclass
class Window:
    """One allocated window: ``regions[rank]`` is rank's exposed memory."""

    wid: int
    name: str
    regions: List[Region]
    disp_unit: Datatype = BYTE
    freed: bool = False

    def _check_live(self) -> None:
        if self.freed:
            raise RmaUsageError(f"window '{self.name}' was freed")

    def region_of(self, rank: int) -> Region:
        self._check_live()
        try:
            return self.regions[rank]
        except IndexError:
            raise RmaUsageError(
                f"window '{self.name}' has no rank {rank}"
            ) from None

    def target_interval(self, rank: int, disp: int, count: int) -> Interval:
        """Byte-address interval of ``count`` elements at displacement ``disp``."""
        region = self.region_of(rank)
        off = disp * self.disp_unit.extent
        nbytes = count * self.disp_unit.extent
        if off < 0 or nbytes <= 0 or off + nbytes > region.size:
            raise OutOfWindowError(
                f"access of {count} x {self.disp_unit} at disp {disp} exceeds "
                f"window '{self.name}' ({region.size} bytes) on rank {rank}"
            )
        return region.sub_interval(off, nbytes)

    def memory(self, rank: int) -> np.ndarray:
        """Typed numpy view of rank's exposed region."""
        return self.region_of(rank).view(self.disp_unit.np_dtype)

    def size_elems(self, rank: int) -> int:
        return self.region_of(rank).size // self.disp_unit.extent

"""Minimal MPI datatype registry.

MPI-RMA's atomicity property (§2.1 of the paper) is defined "at the
MPI_Datatype level", and window displacement units are expressed in
datatype extents; application code in :mod:`repro.apps` sizes its
buffers and one-sided calls through these descriptors instead of raw
byte counts, like real MPI code does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Datatype",
    "BYTE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "GRAPH_TYPE",
]


@dataclass(frozen=True, slots=True)
class Datatype:
    """An MPI basic datatype: a name, a byte extent and a numpy dtype."""

    name: str
    extent: int
    np_dtype: np.dtype

    def count_bytes(self, count: int) -> int:
        """Total bytes of ``count`` elements."""
        if count < 0:
            raise ValueError(f"negative element count {count}")
        return count * self.extent

    def __str__(self) -> str:
        return self.name


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
INT32 = Datatype("MPI_INT", 4, np.dtype(np.int32))
INT64 = Datatype("MPI_LONG_LONG", 8, np.dtype(np.int64))
FLOAT32 = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
FLOAT64 = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))

# MiniVite communicates (vertex, community) pairs through a user-defined
# type it calls MPI_GRAPH_TYPE (see paper Fig. 9a); two 64-bit integers.
GRAPH_TYPE = Datatype("MPI_GRAPH_TYPE", 16, np.dtype(np.int64))

"""Per-rank virtual memory for the simulated MPI processes.

Each simulated rank owns an :class:`AddressSpace`: a bump allocator of
named :class:`Region` objects backed by numpy byte arrays.  Regions have
a *kind* — ``STACK``, ``HEAP`` or ``WINDOW`` — because two detectors in
this reproduction care about provenance:

* the MUST-RMA model inherits ThreadSanitizer's blind spot: accesses to
  **stack** arrays are not instrumented (the cause of the paper's 15
  false negatives, §5.2);
* the alias filter (:mod:`repro.aliasing`) lets RMA-Analyzer-family
  detectors skip local accesses to regions that can never alias RMA
  memory.

Addresses are plain integers in a per-rank space; a guard gap is kept
between regions so off-by-one intervals never silently alias a
neighbouring region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..intervals import Interval
from .errors import RmaUsageError

__all__ = ["RegionKind", "RegionInfo", "Region", "AddressSpace"]

_GUARD = 64  # unmapped bytes between regions


class RegionKind(enum.Enum):
    STACK = "stack"
    HEAP = "heap"
    WINDOW = "window"


@dataclass(frozen=True, slots=True)
class RegionInfo:
    """Event-time snapshot of the provenance facts detectors filter on."""

    kind: RegionKind
    may_alias_rma: bool

    @property
    def is_stack(self) -> bool:
        return self.kind is RegionKind.STACK

    @property
    def is_window(self) -> bool:
        return self.kind is RegionKind.WINDOW


@dataclass
class Region:
    """A named, contiguous allocation in one rank's address space."""

    name: str
    kind: RegionKind
    base: int
    size: int
    rank: int
    data: np.ndarray = field(repr=False)
    # set by the simulator when the region is (part of) an RMA window or
    # has been used as the local buffer of a one-sided call; the alias
    # filter reads it
    may_alias_rma: bool = False

    @property
    def interval(self) -> Interval:
        return Interval(self.base, self.base + self.size)

    @property
    def info(self) -> "RegionInfo":
        return RegionInfo(self.kind, self.may_alias_rma)

    def sub_interval(self, offset: int, nbytes: int) -> Interval:
        """Address interval of ``nbytes`` at ``offset`` inside the region."""
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise RmaUsageError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"'{self.name}' of size {self.size} (rank {self.rank})"
            )
        return Interval(self.base + offset, self.base + offset + nbytes)

    def view(self, dtype: np.dtype = np.dtype(np.uint8)) -> np.ndarray:
        """The region's backing store reinterpreted as ``dtype``."""
        return self.data.view(dtype)


class AddressSpace:
    """Bump allocator of regions for one rank."""

    def __init__(self, rank: int, base: int = 0x1000) -> None:
        self.rank = rank
        self._next = base
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}

    def alloc(self, name: str, size: int, kind: RegionKind) -> Region:
        """Allocate ``size`` zeroed bytes under ``name``."""
        if size <= 0:
            raise RmaUsageError(f"cannot allocate {size} bytes for '{name}'")
        if name in self._by_name:
            raise RmaUsageError(f"region '{name}' already exists on rank {self.rank}")
        region = Region(
            name=name,
            kind=kind,
            base=self._next,
            size=size,
            rank=self.rank,
            data=np.zeros(size, dtype=np.uint8),
        )
        self._next += size + _GUARD
        self._regions.append(region)
        self._by_name[name] = region
        return region

    def free(self, region: Region) -> None:
        """Release a region (addresses are never reused — debug-friendly)."""
        if self._by_name.get(region.name) is not region:
            raise RmaUsageError(
                f"double free or foreign region '{region.name}' on rank {self.rank}"
            )
        del self._by_name[region.name]
        self._regions.remove(region)

    def __getitem__(self, name: str) -> Region:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def regions(self) -> List[Region]:
        return list(self._regions)

    def region_at(self, addr: int) -> Optional[Region]:
        """The region containing address ``addr``, if any."""
        for region in self._regions:
            if addr in region.interval:
                return region
        return None

"""Latency/bandwidth cost model for the simulated cluster.

The paper's timings come from an InfiniBand-HDR cluster; ours come from
a single Python process.  To report *shapes* comparable to Figs 10-12
the simulator keeps, per rank, a simulated clock fed by a simple
alpha-beta model:

* a local compute statement costs ``compute_ns_per_unit`` per declared
  work unit,
* a one-sided operation costs ``rma_latency_ns + nbytes * ns_per_byte``
  charged to the origin,
* a synchronization (barrier / unlock_all) costs a log(P) fan-in plus
  the straggler wait (ranks advance to the max clock),
* detector analysis time is *measured* (wall clock around detector
  callbacks, see :class:`repro.mpi.interposition.Interposition`) and
  charged to the rank that triggered the callback, scaled by
  ``analysis_scale``.

Defaults are loosely calibrated to HDR-class fabrics (≈1 µs latency,
≈25 GB/s) — the absolute values do not matter for the reproduction, the
relative weight of analysis vs. communication does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["CostParams", "SimClock"]


@dataclass(frozen=True)
class CostParams:
    """Tunable constants of the alpha-beta machine model."""

    rma_latency_ns: float = 1_000.0  # per one-sided op, origin side
    ns_per_byte: float = 0.04  # ~25 GB/s
    local_access_ns: float = 2.0  # un-instrumented load/store
    #: one application "work unit" (e.g. the per-edge Louvain kernel or
    #: the per-cell flux update): memory-bound compute, a few hundred ns
    compute_ns_per_unit: float = 250.0
    sync_base_ns: float = 2_000.0  # barrier/unlock fan-in constant
    #: measured *Python* detector wall time is mapped onto simulated tool
    #: time with this factor when wall-based charging is used explicitly.
    analysis_scale: float = 0.01
    #: deterministic analysis charging (the default used by the
    #: interposition layer): every instrumented event costs the tool a
    #: fixed dispatch overhead plus a per-work-unit cost, where a work
    #: unit is one BST comparison / shadow-cell visit / clock entry —
    #: the operations that dominate the compiled tools' runtime.
    analysis_base_ns: float = 120.0
    analysis_ns_per_unit: float = 30.0


class SimClock:
    """Per-rank simulated clocks plus per-category accounting.

    All times are nanoseconds of *simulated* execution.  ``charge``
    advances one rank; ``synchronize`` models a barrier by advancing every
    participant to the maximum clock plus a log(P) fan-in term.
    """

    def __init__(self, nranks: int, params: CostParams | None = None) -> None:
        self.params = params or CostParams()
        self.nranks = nranks
        self.now: List[float] = [0.0] * nranks
        # per-rank breakdown: compute / comm / sync / analysis
        self.breakdown: List[Dict[str, float]] = [
            {"compute": 0.0, "comm": 0.0, "sync": 0.0, "analysis": 0.0}
            for _ in range(nranks)
        ]

    # -- charging -------------------------------------------------------------

    def charge(self, rank: int, ns: float, category: str) -> None:
        self.now[rank] += ns
        self.breakdown[rank][category] += ns

    def charge_rma(self, rank: int, nbytes: int) -> None:
        p = self.params
        self.charge(rank, p.rma_latency_ns + nbytes * p.ns_per_byte, "comm")

    def charge_local(self, rank: int, nbytes: int) -> None:
        self.charge(rank, self.params.local_access_ns + 0.03 * nbytes, "compute")

    def charge_compute(self, rank: int, units: float) -> None:
        self.charge(rank, units * self.params.compute_ns_per_unit, "compute")

    def charge_analysis(self, rank: int, wall_seconds: float) -> None:
        """Attribute measured detector wall time to a rank's clock."""
        self.charge(
            rank, wall_seconds * 1e9 * self.params.analysis_scale, "analysis"
        )

    def charge_analysis_work(self, rank: int, events: int, work: float) -> None:
        """Deterministic analysis cost: dispatch + data-structure work."""
        p = self.params
        self.charge(
            rank,
            events * p.analysis_base_ns + work * p.analysis_ns_per_unit,
            "analysis",
        )

    def synchronize(self, ranks: List[int]) -> None:
        """Barrier among ``ranks``: all jump to max + log fan-in."""
        if not ranks:
            return
        fan_in = self.params.sync_base_ns * max(1.0, math.log2(max(2, len(ranks))))
        target = max(self.now[r] for r in ranks) + fan_in
        for r in ranks:
            waited = target - self.now[r]
            self.breakdown[r]["sync"] += waited
            self.now[r] = target

    # -- reporting -------------------------------------------------------------

    def elapsed(self) -> float:
        """Simulated makespan in nanoseconds (slowest rank)."""
        return max(self.now) if self.now else 0.0

    def elapsed_ms(self) -> float:
        return self.elapsed() / 1e6

    def total(self, category: str) -> float:
        return sum(b[category] for b in self.breakdown)

"""PMPI-style interposition layer.

In the real tool chain, RMA-Analyzer instruments memory accesses at
compile time (LLVM pass) and intercepts MPI calls through the PMPI
profiling interface (§5.1).  In this reproduction the simulated runtime
plays both roles: every Load/Store/Put/Get and every synchronization
call flows through one :class:`Interposition` instance which

* forwards the event to each attached detector (see
  :class:`repro.detectors.base.Detector` for the hook set),
* measures the wall-clock time each detector spends handling the event
  and charges it to the issuing rank's simulated clock — this is the
  "overhead of the analysis at runtime" of Figs 10-12,
* charges the detector's *own* communication (RMA-Analyzer sends an
  MPI_Send to the target per one-sided op; MUST-RMA piggybacks vector
  clocks whose size grows with the rank count) to the cost model,
* optionally appends everything to a :class:`TraceLog`.

Detectors may raise :class:`repro.core.report.DataRaceError` to emulate
the tool's abort-on-first-race behaviour; the exception propagates to
the simulator which stops the world.
"""

from __future__ import annotations

import time
from typing import List, Optional, Protocol, Sequence

from .. import obs
from ..intervals import MemoryAccess
from .costmodel import SimClock
from .memory import Region, RegionInfo
from .trace import LocalEvent, RmaEvent, SyncEvent, SyncKind, TraceLog
from .window import Window

__all__ = ["DetectorProtocol", "Interposition"]


class DetectorProtocol(Protocol):
    """Structural interface of a detector (see repro.detectors.base)."""

    name: str
    # extra bytes the tool itself sends per one-sided op (PMPI MPI_Send)
    rma_notify_bytes: int

    def sync_notify_bytes(self, nranks: int) -> int: ...
    def analysis_work(self) -> float: ...
    def on_win_create(self, window: Window) -> None: ...
    def on_win_free(self, wid: int) -> None: ...
    def on_epoch_start(self, rank: int, wid: int) -> None: ...
    def on_epoch_end(self, rank: int, wid: int) -> None: ...
    def on_flush(self, rank: int, wid: int) -> None: ...
    def on_request_complete(self, rank: int, wid: int, access) -> None: ...
    def on_barrier(self) -> None: ...
    def on_fence(self, wid: int, nranks: int) -> None: ...
    def on_local(
        self, rank: int, access: MemoryAccess, region: RegionInfo
    ) -> None: ...
    def on_rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: RegionInfo,
        target_region: RegionInfo,
    ) -> None: ...
    def finalize(self) -> None: ...


class Interposition:
    """Fan-out of runtime events to detectors, with timing and costs."""

    def __init__(
        self,
        detectors: Sequence[DetectorProtocol],
        clock: SimClock,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.detectors: List[DetectorProtocol] = list(detectors)
        self.clock = clock
        self.trace = trace
        #: wall-clock seconds spent inside each detector, by name
        self.analysis_wall = {d.name: 0.0 for d in self.detectors}
        self.events_seen = 0
        self._last_work = 0.0
        self._obs_reg = None

    def _bind_obs(self, reg) -> None:
        """Cache per-kind event counters — one per event is too hot for
        the labelled get-or-create accessor."""
        self._obs_reg = reg
        self._c_local = reg.counter("interpose.events", kind="local")
        self._c_rma = reg.counter("interpose.events", kind="rma")
        self._tl = reg.timeline

    def _sync_timeline(self, kind: str, rank: int, wid: int) -> None:
        """Replicate one synchronization event into every rank's lane."""
        tl = obs.active().timeline
        if tl.enabled:
            tl.record_sync(kind, rank, wid, range(self.clock.nranks))

    # -- internal ------------------------------------------------------------

    def _timed(self, rank: int):
        """Context data for timing one event's detector work."""
        return _Timer(self, rank)

    # -- event hooks -----------------------------------------------------------

    def win_create(self, window: Window) -> None:
        if self.trace is not None:
            self.trace.append(
                SyncEvent(self.trace.next_seq(), -1, SyncKind.WIN_CREATE, window.wid)
            )
        self._sync_timeline("win_create", -1, window.wid)
        with self._timed(-1):
            for d in self.detectors:
                d.on_win_create(window)

    def win_free(self, wid: int) -> None:
        if self.trace is not None:
            self.trace.append(
                SyncEvent(self.trace.next_seq(), -1, SyncKind.WIN_FREE, wid)
            )
        self._sync_timeline("win_free", -1, wid)
        with self._timed(-1):
            for d in self.detectors:
                d.on_win_free(wid)

    def epoch_start(self, rank: int, wid: int) -> None:
        if self.trace is not None:
            self.trace.append(
                SyncEvent(self.trace.next_seq(), rank, SyncKind.LOCK_ALL, wid)
            )
        self._sync_timeline("lock_all", rank, wid)
        with self._timed(rank):
            for d in self.detectors:
                d.on_epoch_start(rank, wid)

    def epoch_end(self, rank: int, wid: int) -> None:
        if self.trace is not None:
            self.trace.append(
                SyncEvent(self.trace.next_seq(), rank, SyncKind.UNLOCK_ALL, wid)
            )
        self._sync_timeline("unlock_all", rank, wid)
        self._charge_sync_traffic(rank)
        with self._timed(rank):
            for d in self.detectors:
                d.on_epoch_end(rank, wid)

    def flush(self, rank: int, wid: int, *, all_targets: bool) -> None:
        kind = SyncKind.FLUSH_ALL if all_targets else SyncKind.FLUSH
        if self.trace is not None:
            self.trace.append(SyncEvent(self.trace.next_seq(), rank, kind, wid))
        self._sync_timeline(kind.value, rank, wid)
        self._charge_sync_traffic(rank)
        with self._timed(rank):
            for d in self.detectors:
                d.on_flush(rank, wid)

    def request_complete(self, rank: int, wid: int, access) -> None:
        with self._timed(rank):
            for d in self.detectors:
                d.on_request_complete(rank, wid, access)

    def barrier(self) -> None:
        if self.trace is not None:
            self.trace.append(SyncEvent(self.trace.next_seq(), -1, SyncKind.BARRIER))
        self._sync_timeline("barrier", -1, -1)
        with self._timed(-1):
            for d in self.detectors:
                d.on_barrier()

    def fence(self, wid: int, nranks: int) -> None:
        if self.trace is not None:
            self.trace.append(
                SyncEvent(self.trace.next_seq(), -1, SyncKind.FENCE, wid)
            )
        self._sync_timeline("fence", -1, wid)
        self._charge_sync_traffic(0)
        with self._timed(-1):
            for d in self.detectors:
                d.on_fence(wid, nranks)

    def local_access(
        self, rank: int, access: MemoryAccess, region: Region
    ) -> None:
        self.events_seen += 1
        reg = obs.active()
        if reg.enabled:
            if reg is not self._obs_reg:
                self._bind_obs(reg)
            self._c_local.value += 1
            if self._tl.enabled:
                self._tl.record(rank, "local", rank, -1, (None, -1, access))
        if self.trace is not None:
            self.trace.append(
                LocalEvent(self.trace.next_seq(), rank, access, region.info)
            )
        with self._timed(rank):
            info = region.info
            for d in self.detectors:
                d.on_local(rank, access, info)

    def rma(
        self,
        op: str,
        rank: int,
        target: int,
        wid: int,
        origin_access: MemoryAccess,
        target_access: MemoryAccess,
        origin_region: Region,
        target_region: Region,
        nbytes: int,
    ) -> None:
        self.events_seen += 1
        reg = obs.active()
        if reg.enabled:
            if reg is not self._obs_reg:
                self._bind_obs(reg)
            self._c_rma.value += 1
            if self._tl.enabled:
                self._tl.record_rma(op, rank, target, wid,
                                    origin_access, target_access)
        if self.trace is not None:
            self.trace.append(
                RmaEvent(
                    self.trace.next_seq(),
                    rank,
                    op,
                    target,
                    wid,
                    origin_access,
                    target_access,
                    origin_region.info,
                    target_region.info,
                    nbytes,
                )
            )
        # the tool's own notification message (RMA-Analyzer: one MPI_Send
        # to the target per one-sided operation, §5.1).  It piggybacks on
        # the operation's network transaction: charge bytes plus a small
        # injection overhead, not a full fabric round-trip.
        for d in self.detectors:
            if d.rma_notify_bytes:
                self.clock.charge(
                    rank,
                    100.0 + d.rma_notify_bytes * self.clock.params.ns_per_byte,
                    "comm",
                )
        with self._timed(rank):
            oinfo = origin_region.info
            tinfo = target_region.info
            for d in self.detectors:
                d.on_rma(
                    op, rank, target, wid, origin_access, target_access,
                    oinfo, tinfo,
                )

    def finalize(self) -> None:
        with self._timed(-1):
            for d in self.detectors:
                d.finalize()

    # -- costs -------------------------------------------------------------------

    def _charge_sync_traffic(self, rank: int) -> None:
        nranks = self.clock.nranks
        for d in self.detectors:
            nbytes = d.sync_notify_bytes(nranks)
            if nbytes:
                self.clock.charge_rma(rank if rank >= 0 else 0, nbytes)


class _Timer:
    """Times one event's detector work and books it on the clock."""

    __slots__ = ("interp", "rank", "t0")

    def __init__(self, interp: Interposition, rank: int) -> None:
        self.interp = interp
        self.rank = rank

    def __enter__(self) -> "_Timer":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self.t0
        interp = self.interp
        if not interp.detectors:
            return
        reg = obs.active()
        if reg.enabled:
            # piggyback on the clock reads the cost model already makes
            reg.phase_ns("interpose.dispatch", int(dt * 1e9))
        for d in interp.detectors:
            # with several detectors attached the split is approximate
            # (equal shares); timing experiments attach exactly one
            interp.analysis_wall[d.name] += dt / max(1, len(interp.detectors))
        # deterministic simulated cost: per-event dispatch + the data
        # structure work the detectors just performed
        total_work = 0.0
        for d in interp.detectors:
            total_work += d.analysis_work()
        delta = total_work - interp._last_work
        interp._last_work = total_work
        if self.rank >= 0:
            interp.clock.charge_analysis_work(self.rank, 1, delta)

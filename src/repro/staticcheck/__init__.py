"""Compile-time analysis — the paper's §7 future-work direction.

* :func:`check_program` — a Saillard-et-al.-style local-concurrency
  checker over a symbolic IR: definite same-process races are reported
  before the program runs; cross-process window conflicts surface as
  may-race warnings (the original analysis "is limited to errors
  occurring at the origin side only").
* :func:`instrumentation_plan` — the static+dynamic combination: source
  lines proven race-free skip runtime instrumentation.
* :mod:`repro.staticcheck.frontend` — IR front-ends (microbenchmark
  CodeSpecs, the paper's Codes 1/2).
"""

from .checker import StaticRace, StaticReport, check_program, instrumentation_plan
from .frontend import code1_static, code2_static, from_codespec
from .ir import SOp, StaticProgram, op_accesses

__all__ = [
    "SOp",
    "StaticProgram",
    "StaticRace",
    "StaticReport",
    "check_program",
    "code1_static",
    "code2_static",
    "from_codespec",
    "instrumentation_plan",
    "op_accesses",
]

"""The compile-time local-concurrency checker (Saillard et al. style).

Per process, a linear scan over the op sequence maintains the set of
symbolic accesses that are still *in flight* (one-sided operations whose
epoch has not been completed) plus the completed local accesses, and
applies the same program-order conflict rules as the runtime detector
(:func:`types_conflict`):

* a local access after an in-flight one-sided op on the same symbolic
  range is a **definite local race** — reported at compile time with
  both source lines, before the program ever runs;
* two in-flight one-sided ops of the same process conflicting on a
  symbolic range likewise;
* an ``unlock_all`` / ``fence`` completes the in-flight set (a
  ``flush_all`` completes it too — the static view is per-process, where
  flush genuinely orders the caller's own operations).

Like the original static analysis, the checker is "limited to errors
occurring at the origin side only": cross-process conflicts depend on
runtime targets and timing, so overlapping one-sided window ranges from
*different* ranks are only surfaced as *may-race* warnings.

The second §7 goal — combining the static pass with the runtime tool —
is :func:`instrumentation_plan`: source lines whose accesses can never
conflict with an in-flight one-sided operation are proven race-free and
need no runtime instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..intervals import AccessType, Interval, types_conflict
from .ir import SOp, StaticProgram, op_accesses

__all__ = ["StaticRace", "StaticReport", "check_program", "instrumentation_plan"]


@dataclass(frozen=True)
class StaticRace:
    """A compile-time finding: two conflicting lines of one rank."""

    rank: int
    first_line: int
    second_line: int
    symbol: str
    first_type: AccessType
    second_type: AccessType
    definite: bool  # True: local race; False: cross-process may-race

    @property
    def message(self) -> str:
        kind = "data race" if self.definite else "possible data race"
        return (
            f"static: {kind} on '{self.symbol}' between line "
            f"{self.first_line} ({self.first_type}) and line "
            f"{self.second_line} ({self.second_type})"
        )


@dataclass
class StaticReport:
    """Everything the compile-time pass found."""

    races: List[StaticRace] = field(default_factory=list)
    may_races: List[StaticRace] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.races

    def all_findings(self) -> List[StaticRace]:
        return self.races + self.may_races


@dataclass(frozen=True)
class _Pending:
    """An in-flight or completed symbolic access."""

    symbol: str
    owner: int
    range: Interval
    type: AccessType
    line: int
    in_flight: bool  # one-sided and not yet completed


def _scan_rank(rank: int, ops: List[SOp], report: StaticReport) -> None:
    # state bucketed by (symbol, owner) so the scan is linear in the
    # number of accesses sharing a symbol (like the runtime BST's search)
    state: Dict[Tuple[str, int], List[_Pending]] = {}
    for op in ops:
        if op.is_sync:
            if op.kind in ("unlock_all", "fence", "flush_all"):
                # the caller's one-sided ops are completed from its own
                # program-order point of view
                for bucket in state.values():
                    for i, p in enumerate(bucket):
                        if p.in_flight:
                            bucket[i] = _Pending(
                                p.symbol, p.owner, p.range, p.type,
                                p.line, False,
                            )
            continue
        for symbol, owner, rng, typ in op_accesses(op, rank):
            bucket = state.setdefault((symbol, owner), [])
            for prev in bucket:
                if not prev.range.overlaps(rng):
                    continue
                stored_type = prev.type if prev.in_flight else (
                    # completed one-sided ops act like completed local
                    # accesses for ordering purposes
                    AccessType.LOCAL_WRITE if prev.type.is_write
                    else AccessType.LOCAL_READ
                )
                if types_conflict(stored_type, typ):
                    report.races.append(
                        StaticRace(rank, prev.line, op.line, symbol,
                                   prev.type, typ, True)
                    )
            bucket.append(
                _Pending(symbol, owner, rng, typ, op.line, op.is_onesided)
            )


def _cross_rank_warnings(program: StaticProgram, report: StaticReport) -> None:
    """Overlapping one-sided window footprints of different ranks."""
    footprints: List[Tuple[int, str, int, Interval, AccessType, int]] = []
    for rank, ops in program.ops.items():
        for op in ops:
            if not op.is_onesided:
                continue
            for symbol, owner, rng, typ in op_accesses(op, rank):
                if symbol == "win":
                    footprints.append((rank, symbol, owner, rng, typ, op.line))
    seen: Set[Tuple[int, int]] = set()
    for i, a in enumerate(footprints):
        for b in footprints[i + 1 :]:
            if a[0] == b[0]:
                continue  # same issuer: handled by the local scan
            if a[2] != b[2] or not a[3].overlaps(b[3]):
                continue
            if not (a[4].is_write or b[4].is_write):
                continue
            key = (a[5], b[5])
            if key in seen:
                continue
            seen.add(key)
            report.may_races.append(
                StaticRace(a[2], a[5], b[5], "win", a[4], b[4], False)
            )


def check_program(program: StaticProgram) -> StaticReport:
    """Run the whole compile-time analysis."""
    report = StaticReport()
    for rank, ops in sorted(program.ops.items()):
        _scan_rank(rank, ops, report)
    _cross_rank_warnings(program, report)
    return report


def instrumentation_plan(program: StaticProgram) -> Dict[int, bool]:
    """line -> must-instrument, the §7 static+dynamic combination.

    A line needs runtime instrumentation when one of its accesses *may*
    overlap an in-flight one-sided operation's footprint (same symbol,
    same owner, overlapping range — issuer-agnostic, so target-side
    conflicts stay covered).  Everything else is statically race-free
    and can skip the runtime hook entirely.
    """
    # all one-sided footprints, program-wide (any rank may be in flight
    # concurrently with any line)
    onesided: List[Tuple[str, int, Interval]] = []
    for rank, ops in program.ops.items():
        for op in ops:
            if op.is_onesided:
                for symbol, owner, rng, _typ in op_accesses(op, rank):
                    onesided.append((symbol, owner, rng))

    plan: Dict[int, bool] = {}
    for rank, ops in program.ops.items():
        for op in ops:
            if op.is_sync:
                continue
            needed = plan.get(op.line, False)
            if op.is_onesided:
                needed = True  # one-sided calls are always intercepted
            else:
                for symbol, owner, rng, _typ in op_accesses(op, rank):
                    for s2, o2, r2 in onesided:
                        if symbol == s2 and owner == o2 and rng.overlaps(r2):
                            needed = True
                            break
                    if needed:
                        break
            plan[op.line] = needed
    return plan

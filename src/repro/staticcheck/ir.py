"""A small symbolic IR for compile-time analysis of MPI-RMA programs.

The paper's conclusion (§7) plans to "enhance the static analysis
proposed by Saillard et al. [16] to detect more errors at compile time
... and to combine this static analysis to RMA-Analyzer in order to
reduce the overhead at runtime".  Saillard et al. (Correctness'22) walk
the LLVM control-flow graph and detect *local concurrency errors* —
races whose both accesses are issued by the same process — before the
program ever runs.

Our stand-in for the LLVM IR is a symbolic program: per rank, a list of
:class:`SOp` operations over named buffers with byte-offset intervals.
Buffers are symbols (the static analysis does not know addresses); two
accesses may conflict only when they name the same symbol on the same
process and their offset intervals overlap.  One-sided operations also
carry their target and window displacement interval, which the checker
uses for the cross-process *may-race* warnings it cannot prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..intervals import AccessType, Interval

__all__ = ["SOp", "StaticProgram", "op_accesses"]

_ONESIDED = ("put", "get", "accumulate")
_LOCAL = ("load", "store")
_SYNC = ("flush_all", "barrier", "lock_all", "unlock_all", "fence")


@dataclass(frozen=True)
class SOp:
    """One abstract operation of one rank."""

    kind: str  # put|get|accumulate|load|store|flush_all|barrier|...
    line: int = 0
    buf: str = ""  # local operand symbol (one-sided origin buffer too)
    buf_range: Optional[Interval] = None
    target: Optional[int] = None  # one-sided only
    win_range: Optional[Interval] = None  # displacement bytes at the target

    def __post_init__(self) -> None:
        if self.kind in _ONESIDED:
            if self.target is None or self.win_range is None or not self.buf:
                raise ValueError(f"{self.kind} needs buf, target and win_range")
        elif self.kind in _LOCAL:
            if not self.buf or self.buf_range is None:
                raise ValueError(f"{self.kind} needs buf and buf_range")
        elif self.kind not in _SYNC:
            raise ValueError(f"unknown op kind {self.kind!r}")

    @property
    def is_onesided(self) -> bool:
        return self.kind in _ONESIDED

    @property
    def is_local(self) -> bool:
        return self.kind in _LOCAL

    @property
    def is_sync(self) -> bool:
        return self.kind in _SYNC


@dataclass
class StaticProgram:
    """Per-rank op sequences (the straight-line CFG case of [16])."""

    ops: Dict[int, List[SOp]] = field(default_factory=dict)

    def rank(self, r: int) -> List[SOp]:
        return self.ops.setdefault(r, [])

    def add(self, rank: int, op: SOp) -> "StaticProgram":
        self.rank(rank).append(op)
        return self

    @property
    def nranks(self) -> int:
        return max(self.ops, default=-1) + 1

    def all_lines(self) -> List[int]:
        return sorted(
            {op.line for ops in self.ops.values() for op in ops if not op.is_sync}
        )


def op_accesses(
    op: SOp, rank: int
) -> List[Tuple[str, int, Interval, AccessType]]:
    """The symbolic accesses of one op: (symbol, owner rank, range, type).

    Window symbols are ``"win"`` owned by the target; the analysis treats
    every rank's window as one symbol per owner (exactly what the tool's
    per-window BST does at runtime).
    """
    out: List[Tuple[str, int, Interval, AccessType]] = []
    if op.kind == "put" or op.kind == "accumulate":
        assert op.target is not None and op.win_range is not None
        if op.buf_range is not None:
            out.append((op.buf, rank, op.buf_range, AccessType.RMA_READ))
        out.append(("win", op.target, op.win_range, AccessType.RMA_WRITE))
    elif op.kind == "get":
        assert op.target is not None and op.win_range is not None
        if op.buf_range is not None:
            out.append((op.buf, rank, op.buf_range, AccessType.RMA_WRITE))
        out.append(("win", op.target, op.win_range, AccessType.RMA_READ))
    elif op.kind == "load":
        assert op.buf_range is not None
        out.append((op.buf, rank, op.buf_range, AccessType.LOCAL_READ))
    elif op.kind == "store":
        assert op.buf_range is not None
        out.append((op.buf, rank, op.buf_range, AccessType.LOCAL_WRITE))
    return out

"""Front-ends producing :class:`StaticProgram` IR.

Two sources today:

* :func:`from_codespec` — lower a microbenchmark :class:`CodeSpec` so the
  whole §5.2 suite can be pushed through the compile-time pass (the
  experiment of ``repro.experiments.static_analysis``);
* :func:`code1_static` / :func:`code2_static` — the paper's named codes.
"""

from __future__ import annotations

from ..intervals import Interval
from ..microbench.model import (
    CodeSpec,
    OpInst,
    OpKind,
    Placement,
    SlotKind,
)
from .ir import SOp, StaticProgram

__all__ = ["from_codespec", "code1_static", "code2_static"]

_N = 8
_SHARED = (Interval(8, 16), Interval(24, 32))
_PRIV_WIN = (Interval(40, 48), Interval(48, 56))


def _site_symbol(spec: CodeSpec) -> str:
    # in-window shared sites live in the owner's window symbol; the
    # out-of-window buffer is its own symbol
    return "win" if spec.site.placement is Placement.IN_WINDOW else "shared"


def from_codespec(spec: CodeSpec) -> StaticProgram:
    """Lower a two-operation microbenchmark to the static IR."""
    program = StaticProgram()
    shared_sym = _site_symbol(spec)
    for i, op in enumerate((spec.first, spec.second)):
        slot = spec.site.first_slot if i == 0 else spec.site.second_slot
        j = i if spec.disjoint else 0
        shared_rng = _SHARED[j] if shared_sym == "win" else Interval(0, _N)
        if spec.disjoint and shared_sym == "shared":
            shared_rng = Interval(j * 16, j * 16 + _N)
        line = 10 + i
        if not op.kind.is_onesided:
            program.add(op.caller, SOp("load" if op.kind is OpKind.LOAD
                                       else "store",
                                       line, shared_sym, shared_rng))
            continue
        assert op.target is not None
        if slot is SlotKind.BUF:
            program.add(op.caller, SOp(
                op.kind.value, line, shared_sym, shared_rng,
                target=op.target, win_range=_PRIV_WIN[i],
            ))
        else:
            program.add(op.caller, SOp(
                op.kind.value, line, f"priv{i}", Interval(0, _N),
                target=op.target, win_range=shared_rng,
            ))
    for rank in range(3):
        program.rank(rank)  # materialize all three processes
        program.add(rank, SOp("unlock_all", 90))
    return program


def code1_static() -> StaticProgram:
    """Fig. 8a: Load(4); MPI_Put(2,12); Store(7) — statically detectable."""
    program = StaticProgram()
    program.add(0, SOp("load", 10, "buf", Interval(4, 5)))
    program.add(0, SOp("put", 11, "buf", Interval(2, 13),
                       target=1, win_range=Interval(0, 11)))
    program.add(0, SOp("store", 12, "buf", Interval(7, 8)))
    program.add(0, SOp("unlock_all", 13))
    program.add(1, SOp("unlock_all", 13))
    return program


def code2_static(iterations: int = 1000) -> StaticProgram:
    """Fig. 8b: the Get loop — race-free, provable at compile time."""
    program = StaticProgram()
    for i in range(iterations):
        program.add(0, SOp("load", 9, "i", Interval(0, 4)))
        program.add(0, SOp("get", 10, "buf", Interval(i, i + 1),
                           target=1, win_range=Interval(i, i + 1)))
        program.add(0, SOp("store", 9, "i", Interval(0, 4)))
    program.add(0, SOp("unlock_all", 12))
    program.add(1, SOp("unlock_all", 12))
    return program

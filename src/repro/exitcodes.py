"""The CLI exit-code contract, in one place.

Every ``repro`` subcommand exits through one of these codes, and the
meanings are load-bearing: CI jobs, the chaos suites, and service
supervisors all branch on them.  ``tests/test_exitcodes.py`` pins the
numeric values, so reshuffling a code is a visible, reviewed act — not
an accident of refactoring.

Contract:

====  ==========================================================
code  meaning
====  ==========================================================
0     success (a completed analysis, a passed gate, a drained
      daemon)
1     quality gate violation (``repro scenarios gate`` below its
      precision/recall floor)
2     usage or operational error (bad arguments, unreadable or
      corrupt input, I/O failure) — nothing ran to completion
3     the *recorded application* failed (``repro record``:
      simulated deadlock / RMA misuse), no partial trace left
4     partial analysis: a resource guard (deadline / memory /
      drain) checkpointed and stopped the run; resumable with
      ``--resume``
5     submitted job failed terminally (``repro submit --wait``:
      the daemon reports ``failed`` or ``quarantined``)
6     server unavailable or overloaded (``repro submit``: 429
      admission rejection, or the daemon cannot be reached)
7     trace diverged: the file is no longer an append-only
      extension of the analyzed prefix (``repro analyze --follow``
      / ``--resume``: hash-chain mismatch) — re-analyze from
      scratch, the checkpointed state cannot be trusted
143   terminated by SIGTERM (128+15) after graceful cleanup —
      ``repro serve`` instead *drains* on SIGTERM and exits 0
====  ==========================================================
"""

from __future__ import annotations

from types import MappingProxyType

__all__ = [
    "EXIT_CODES",
    "EX_APP_FAILED",
    "EX_DIVERGED",
    "EX_ERROR",
    "EX_GATE_FAILED",
    "EX_JOB_FAILED",
    "EX_OK",
    "EX_PARTIAL",
    "EX_SIGTERM",
    "EX_UNAVAILABLE",
]

EX_OK = 0
EX_GATE_FAILED = 1
EX_ERROR = 2
EX_APP_FAILED = 3
EX_PARTIAL = 4
EX_JOB_FAILED = 5
EX_UNAVAILABLE = 6
EX_DIVERGED = 7
EX_SIGTERM = 143

#: the full contract, read-only — new codes land here first, with their
#: one-line meaning, and the pinning test updates in the same change
EXIT_CODES = MappingProxyType({
    EX_OK: "success",
    EX_GATE_FAILED: "quality gate violation",
    EX_ERROR: "usage or operational error",
    EX_APP_FAILED: "recorded application failed",
    EX_PARTIAL: "partial analysis (resource guard stopped; resumable)",
    EX_JOB_FAILED: "submitted job failed terminally",
    EX_UNAVAILABLE: "server unavailable or overloaded",
    EX_DIVERGED: "trace diverged from its analyzed prefix",
    EX_SIGTERM: "terminated by SIGTERM after cleanup",
})

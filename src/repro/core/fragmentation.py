"""Fragmentation of intersecting accesses — paper §4.1 and Fig. 6.

When a new access intersects accesses already stored in the BST, the
intervals are cut at every boundary so that the stored set stays
*disjoint*.  For a single stored access this yields the paper's three
fragments::

      stored:   |---------- Type A ----------|
      new:                |-------- Type B --------|
      result:   | l_frag  | intersection_frag| r_frag |
                  Type A    Type A (+) B       Type B

where ``(+)`` is the Table-1 combination (:func:`combined_type`): RMA
prevails over local, WRITE over READ, ties keep the newest debug info.

The general case fragments the new access against *all* stored accesses
it intersects (which are pairwise disjoint by the detector's invariant)
via a single boundary sweep.  Stored accesses that merely *touch* the
new access (adjacent, no overlap) pass through unchanged — they are
retrieved together with the intersecting ones so that the subsequent
merging step (§4.2) can coalesce them with the new fragments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..intervals import Interval, MemoryAccess
from ..intervals.combine import combine_accesses

__all__ = ["fragment_accesses", "fragment_pair"]


def fragment_pair(stored: MemoryAccess, new: MemoryAccess) -> List[MemoryAccess]:
    """Fragment one stored access against one new access (Fig. 6).

    Returns the non-empty fragments in address order.  Raises when the
    two do not intersect (fragmenting is only defined on intersections).
    """
    return fragment_accesses([stored], new)


def fragment_accesses(
    stored: Sequence[MemoryAccess], new: MemoryAccess
) -> List[MemoryAccess]:
    """Cut ``new`` and the ``stored`` accesses into disjoint fragments.

    ``stored`` must be pairwise disjoint (the BST invariant that
    fragmentation itself maintains).  Every byte covered by ``new`` or by
    a stored access is covered by exactly one returned fragment; bytes
    covered by both carry the Table-1 combined type.  Fragments come back
    sorted by address.
    """
    _check_disjoint(stored)

    # Boundary sweep over the union of all intervals involved.
    cuts = {new.interval.lo, new.interval.hi}
    for acc in stored:
        cuts.add(acc.interval.lo)
        cuts.add(acc.interval.hi)
    points = sorted(cuts)

    by_lo = sorted(stored, key=lambda a: a.interval.lo)
    frags: List[MemoryAccess] = []
    si = 0
    for lo, hi in zip(points, points[1:]):
        seg = Interval(lo, hi)
        while si < len(by_lo) and by_lo[si].interval.hi <= lo:
            si += 1
        covering = None
        if si < len(by_lo) and by_lo[si].interval.overlaps(seg):
            covering = by_lo[si]
        in_new = new.interval.contains_interval(seg)
        if covering is not None and in_new:
            frags.append(combine_accesses(covering.with_interval(seg), new.with_interval(seg)))
        elif covering is not None:
            frags.append(covering.with_interval(seg))
        elif in_new:
            frags.append(new.with_interval(seg))
        # else: a gap outside both — nothing stored there
    return frags


def _check_disjoint(stored: Iterable[MemoryAccess]) -> None:
    by_lo = sorted(stored, key=lambda a: a.interval.lo)
    for a, b in zip(by_lo, by_lo[1:]):
        if a.interval.overlaps(b.interval):
            raise ValueError(
                f"stored accesses must be disjoint, got {a} overlapping {b}"
            )

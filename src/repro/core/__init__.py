"""The paper's contribution: the new BST insertion algorithm and detector.

* :func:`fragment_accesses` — §4.1 disjointness by fragmentation,
* :func:`merge_accesses` — §4.2 node merging,
* :func:`insert_access` — Algorithm 1 end to end,
* :class:`OurDetector` — the full on-the-fly detector,
* :class:`FlatDetector` — the same detector on the flat
  struct-of-arrays core (the default; ``REPRO_CORE=object`` reverts),
* :class:`RaceReport` / :class:`DataRaceError` — Fig. 9b style reports.
"""

from .report import DataRaceError, RaceReport
from .fragmentation import fragment_accesses, fragment_pair
from .merging import merge_accesses
from .insertion import (
    InsertOutcome,
    data_race_detection,
    finish_insertion,
    get_intersecting_accesses,
    insert_access,
)
from .detector import OurDetector
from .flatcore import FlatDetector
from .strided import StridedChain, StridedDetector

__all__ = [
    "DataRaceError",
    "FlatDetector",
    "InsertOutcome",
    "OurDetector",
    "RaceReport",
    "StridedChain",
    "StridedDetector",
    "data_race_detection",
    "finish_insertion",
    "fragment_accesses",
    "fragment_pair",
    "get_intersecting_accesses",
    "insert_access",
    "merge_accesses",
]

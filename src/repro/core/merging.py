"""Merging of adjacent equivalent fragments — paper §4.2 and Fig. 7.

Fragmentation alone makes the BST grow by up to two nodes per insertion
(one removed, three added), which the paper flags as a memory/time
explosion risk.  Merging restores compactness: two fragments are merged
when

1. their intervals are **adjacent** (or overlapping after combination —
   in practice fragmentation guarantees disjointness, so adjacency), and
2. they are **equivalent**: same access type *and* same debug
   information.  Fragments produced by different source lines must stay
   separate — a later race report has to blame the exact instruction
   (the paper: "they will not be fixed in the same way").

This is what collapses the paper's Code 2 loop (5,002 raw accesses) to a
2-node BST, and the CFD-Proxy windows from 90,004 nodes to 54.
"""

from __future__ import annotations

from typing import List, Sequence

from ..intervals import MemoryAccess

__all__ = ["merge_accesses"]


def merge_accesses(frags: Sequence[MemoryAccess]) -> List[MemoryAccess]:
    """Coalesce runs of adjacent equivalent fragments.

    ``frags`` may arrive in any order; the result is sorted by address
    and pairwise non-mergeable (the function is idempotent).
    """
    if not frags:
        return []
    ordered = sorted(frags, key=lambda a: (a.interval.lo, a.interval.hi))
    out: List[MemoryAccess] = [ordered[0]]
    for acc in ordered[1:]:
        prev = out[-1]
        if prev.interval.is_adjacent(acc.interval) and prev.same_site(acc):
            out[-1] = prev.with_interval(prev.interval.union(acc.interval))
        else:
            out.append(acc)
    return out

"""Strided merging — the paper's §6(3) future-work extension, implemented.

MiniVite defeats the §4.2 merging algorithm because its per-vertex
attribute accesses are *strided*: the same source line touches
``base + k * stride`` for k = 0, 1, 2, ... — never adjacent, so nothing
coalesces and the BST stays as large as the original tool's (Table 4).
The paper closes §6 suggesting the fix: "using polyhedra to abstract
memory regions ... the merging algorithm can be extended to non-adjacent
accesses when we can ensure that no accesses will be done between".

This module implements that idea for the 1-D case (a constant-stride
arithmetic progression is exactly a one-dimensional polyhedron à la
Ketterlin & Clauss trace compression):

* a :class:`StridedChain` represents ``reps`` same-site accesses of
  ``length`` bytes at ``base + k * stride``;
* :class:`StridedDetector` extends :class:`OurDetector`: when a new
  access continues the most recent same-site access at a constant
  stride, it is absorbed into a chain *instead of* becoming a BST node;
* soundness is preserved exactly: race checks test membership in the
  chain (not just its envelope), and any access that lands *between*
  members — the "no accesses in between" proviso — explodes the chain
  back into plain nodes before normal insertion proceeds.

The node-count payoff on MiniVite is measured by
``benchmarks/bench_extension_strided.py`` and discussed in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..intervals import Interval, MemoryAccess
from .detector import OurDetector

__all__ = ["StridedChain", "StridedDetector", "site_key"]

SiteKey = Tuple[int, str, int, int, int, Optional[str], int]


def site_key(acc: MemoryAccess) -> SiteKey:
    """The §4.2 merge-equivalence key plus the element length."""
    return (
        int(acc.type),
        acc.debug.filename,
        acc.debug.line,
        acc.origin,
        acc.flush_gen,
        acc.accum_op,
        len(acc.interval),
    )


@dataclass
class StridedChain:
    """``reps`` accesses of ``length`` bytes at ``base + k * stride``."""

    template: MemoryAccess  # carries type/debug/origin/... of every member
    base: int
    stride: int
    reps: int

    @property
    def length(self) -> int:
        return len(self.template.interval)

    @property
    def envelope(self) -> Interval:
        return Interval(self.base, self.base + self.stride * (self.reps - 1)
                        + self.length)

    @property
    def next_lo(self) -> int:
        return self.base + self.stride * self.reps

    def member(self, k: int) -> MemoryAccess:
        lo = self.base + k * self.stride
        return self.template.with_interval(Interval(lo, lo + self.length))

    def members(self) -> List[MemoryAccess]:
        return [self.member(k) for k in range(self.reps)]

    def overlapping_member(self, interval: Interval) -> Optional[MemoryAccess]:
        """The first chain member overlapping ``interval``, if any."""
        if not self.envelope.overlaps(interval):
            return None
        # members covering [lo, hi): k with base + k*s < hi and
        # base + k*s + length > lo
        k_lo = max(0, (interval.lo - self.length - self.base) // self.stride)
        k_hi = min(self.reps - 1, (interval.hi - 1 - self.base) // self.stride)
        for k in range(k_lo, k_hi + 1):
            member_lo = self.base + k * self.stride
            if member_lo < interval.hi and interval.lo < member_lo + self.length:
                return self.member(k)
        return None

    def extends(self, acc: MemoryAccess) -> bool:
        """Would ``acc`` be the chain's next member?"""
        return acc.interval.lo == self.next_lo and len(acc.interval) == self.length


class StridedDetector(OurDetector):
    """Our contribution + strided merging of non-adjacent accesses."""

    name = "Our Contribution (strided)"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # per (rank, wid): active chains by site, and the last plain
        # access per site (a chain seed candidate)
        self._chains: Dict[Tuple[int, int], Dict[SiteKey, StridedChain]] = {}
        self._seeds: Dict[Tuple[int, int], Dict[SiteKey, MemoryAccess]] = {}
        self.chains_formed = 0
        self.accesses_absorbed = 0

    # -- bookkeeping ----------------------------------------------------------

    def _store_chains(self, rank: int, wid: int) -> Dict[SiteKey, StridedChain]:
        return self._chains.setdefault((rank, wid), {})

    def _store_seeds(self, rank: int, wid: int) -> Dict[SiteKey, MemoryAccess]:
        return self._seeds.setdefault((rank, wid), {})

    # -- the extended record path ----------------------------------------------

    def _record(self, rank: int, wid: int, access: MemoryAccess) -> None:
        chains = self._store_chains(rank, wid)
        key = site_key(access)

        # 1. race check against every chain whose member set the access hits
        pred = self._predicate(wid)
        for ckey, chain in list(chains.items()):
            member = chain.overlapping_member(access.interval)
            self.work_units += 2  # envelope test + member arithmetic
            if member is None:
                continue
            if pred(member, access):
                self._report(rank, wid, member, access,
                             phase="data_race_detection")
                return
            if ckey != key or not chain.extends(access):
                # touches the chain without extending it: the "no access
                # in between" guarantee is gone — explode to plain nodes
                self._explode(rank, wid, ckey)

        chains = self._store_chains(rank, wid)
        chain = chains.get(key)

        # 2. extension of an existing chain?
        if chain is not None and chain.extends(access):
            chain.reps += 1
            self.accesses_absorbed += 1
            self.work_units += 1
            return

        # 3. does it form a new chain with the seed access?
        seeds = self._store_seeds(rank, wid)
        seed = seeds.get(key)
        if (
            seed is not None
            and chain is None
            and access.interval.lo > seed.interval.lo + len(seed.interval)
        ):
            stride = access.interval.lo - seed.interval.lo
            candidate = StridedChain(seed, seed.interval.lo, stride, 2)
            # the new member must not collide with anything stored
            bst = self._store(rank, wid)
            if not bst.find_overlapping(candidate.member(1).interval):
                if bst.remove(seed):
                    chains[key] = candidate
                    self.chains_formed += 1
                    self.accesses_absorbed += 1
                    del seeds[key]
                    self._note_high_water((rank, wid))
                    return

        # 4. plain path: Algorithm 1 on the BST
        super()._record(rank, wid, access)
        if access.interval.lo >= 0:
            seeds[key] = access

    def _explode(self, rank: int, wid: int, key: SiteKey) -> None:
        """Reinsert a chain's members as plain nodes (soundness fallback)."""
        chain = self._store_chains(rank, wid).pop(key, None)
        if chain is None:
            return
        bst = self._store(rank, wid)
        for member in chain.members():
            bst.insert(member)
        self.work_units += chain.reps
        self._note_high_water((rank, wid))

    # -- epoch / sync handling ----------------------------------------------------

    def on_epoch_end(self, rank: int, wid: int) -> None:
        self._note_chain_high_water()
        self._chains.pop((rank, wid), None)
        self._seeds.pop((rank, wid), None)
        super().on_epoch_end(rank, wid)

    def on_win_free(self, wid: int) -> None:
        self._note_chain_high_water()
        for key in [k for k in self._chains if k[1] == wid]:
            del self._chains[key]
        for key in [k for k in self._seeds if k[1] == wid]:
            del self._seeds[key]
        super().on_win_free(wid)

    def on_barrier(self) -> None:
        """Prune completed chains the way plain completed accesses prune."""
        self._note_chain_high_water()
        gens = self._flush_gens
        for (rank, wid), chains in self._chains.items():
            for key in list(chains):
                tpl = chains[key].template
                if tpl.type.is_local or tpl.flush_gen < gens.get(
                    (wid, tpl.origin), 0
                ):
                    del chains[key]
        super().on_barrier()

    # -- statistics ------------------------------------------------------------------

    _chain_peak = 0

    def _note_chain_high_water(self) -> None:
        live = sum(len(c) for c in self._chains.values())
        if live > self._chain_peak:
            self._chain_peak = live

    def node_stats(self):
        stats = super().node_stats()
        self._note_chain_high_water()
        # each live chain is one retained node's worth of state
        live_chains = sum(len(c) for c in self._chains.values())
        stats.total_current_nodes += live_chains
        stats.total_max_nodes += self._chain_peak
        return stats

"""Race reports in the exact shape of the paper's Fig. 9b output.

When a data race is detected, RMA-Analyzer stops the program and prints
an error naming the access types and the source file/line of *both*
conflicting instructions, e.g.::

    Error when inserting memory access of type RMA_WRITE from file
    ./dspl.hpp:614 with already inserted interval of type RMA_WRITE
    from file ./dspl.hpp:612. The program will be exiting now with
    MPI_Abort.

Our harness records :class:`RaceReport` objects instead of aborting (so
whole-suite runs can count verdicts), but :meth:`RaceReport.message`
renders the same text and :class:`DataRaceError` is available for
abort-on-first-race mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..intervals import MemoryAccess

__all__ = ["RaceReport", "DataRaceError"]


@dataclass(frozen=True)
class RaceReport:
    """One detected data race: the stored access and the new access.

    ``forensics`` optionally carries the ``repro-forensics-v1`` bundle
    captured at detection time (see :mod:`repro.core.forensics`).  It is
    excluded from equality/hash so two reports of the same race pair
    compare equal regardless of surrounding timeline context — verdict
    dedup and serial/sharded parity depend on that.
    """

    rank: int
    window: int
    stored: MemoryAccess
    new: MemoryAccess
    detector: str = ""
    forensics: Optional[dict] = field(default=None, compare=False)

    @property
    def message(self) -> str:
        """The Fig. 9b error text."""
        return (
            f"Error when inserting memory access of type {self.new.type} "
            f"from file {self.new.debug} with already inserted interval of "
            f"type {self.stored.type} from file {self.stored.debug}. "
            f"The program will be exiting now with MPI_Abort."
        )

    def __str__(self) -> str:
        return self.message


class DataRaceError(RuntimeError):
    """Raised in abort-on-first-race mode (the tool's MPI_Abort path)."""

    def __init__(self, report: RaceReport) -> None:
        super().__init__(report.message)
        self.report = report

"""Race forensics: the diagnostic bundle captured at detection time.

The real tool prints the Fig. 9b abort message — two access types and
two source locations — and stops.  That names the racing pair but not
*why* the tool considered it a race: which epoch the accesses fell in,
what synchronization happened around them, how big the analysis state
was when the search hit.  This module captures exactly that context the
moment a detector files a :class:`~repro.core.report.RaceReport`:

* the racing pair itself (full access metadata, same dicts the trace
  format uses),
* which algorithm phase flagged it (``data_race_detection`` for the
  paper's Algorithm 1, ``legacy_search`` for the original tool's
  intersection query, ...),
* the window's synchronization state (open epochs, flush generations)
  and the racing store's tree statistics at that instant,
* the surrounding event timeline: the K most recent events of each
  involved rank, from the :class:`repro.obs.timeline.Timeline` lane of
  the memory rank that detected the race.

The bundle is a plain dict (schema ``repro-forensics-v1``), JSON-stable,
and deterministic across the sharded pipeline: the timeline lane it
reads is fed by the same :func:`repro.pipeline.shard.shards_of`
projection the pipeline routes by, so a worker that owns the reporting
shard holds byte-for-byte the lane a serial replay holds at the same
point in the event stream.

``render_explain`` turns one bundle into the annotated text diagnostic
behind ``repro explain``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs.timeline import Timeline, timeline_context

__all__ = [
    "FORENSICS_SCHEMA",
    "capture_forensics",
    "forensics_message",
    "render_explain",
    "render_explain_all",
]

FORENSICS_SCHEMA = "repro-forensics-v1"


def _involved_ranks(rank: int, stored_origin: int, new_origin: int) -> List[int]:
    """The ranks a diagnostic must show, deduplicated, detection rank first."""
    ranks: List[int] = []
    for r in (rank, stored_origin, new_origin):
        if r >= 0 and r not in ranks:
            ranks.append(r)
    return ranks


def capture_forensics(
    detector,
    timeline: Timeline,
    rank: int,
    wid: int,
    stored,
    new,
    *,
    phase: str,
    k: int = 8,
) -> dict:
    """Build one ``repro-forensics-v1`` bundle for a just-detected race.

    Called from ``Detector._report`` on the cold path (races are rare by
    construction); everything here is plain dict assembly.  ``detector``
    contributes tool state through two optional hooks —
    ``forensic_sync_state(wid)`` and ``forensic_tree_state(rank, wid)``
    — which default to empty on the base class.
    """
    from ..mpi.trace_io import _access_to_dict

    ranks = _involved_ranks(rank, stored.origin, new.origin)
    return {
        "schema": FORENSICS_SCHEMA,
        "detector": detector.name,
        "phase": phase,
        "rank": rank,
        "window": wid,
        "stored": _access_to_dict(stored),
        "new": _access_to_dict(new),
        "sync": detector.forensic_sync_state(wid),
        "tree": detector.forensic_tree_state(rank, wid),
        "timeline": timeline_context(timeline, rank, ranks, k=k),
    }


def forensics_message(bundle: dict) -> str:
    """The Fig. 9b abort text, reconstructed from a forensics bundle."""
    new, stored = bundle["new"], bundle["stored"]
    return (
        f"Error when inserting memory access of type {new['type']} "
        f"from file {new['file']}:{new['line']} with already inserted "
        f"interval of type {stored['type']} from file "
        f"{stored['file']}:{stored['line']}. "
        f"The program will be exiting now with MPI_Abort."
    )


def _matches(event: dict, acc: dict) -> bool:
    """Does a timeline event record this racing access?"""
    return (
        event.get("lo") == acc["lo"]
        and event.get("hi") == acc["hi"]
        and event.get("file") == acc["file"]
        and event.get("line") == acc["line"]
        and event.get("type") == acc["type"]
    )


def _fmt_event(event: dict, bundle: dict) -> str:
    """One timeline line: ``seq kind detail  [marker]``."""
    kind = event["kind"]
    parts = [f"#{event['seq']:>6}"]
    if kind == "rma":
        parts.append(
            f"{event['op']} rank {event['rank']} -> {event['target']} "
            f"win {event['wid']}"
        )
    elif kind == "local":
        parts.append(f"local rank {event['rank']}")
    else:
        who = "world" if event["rank"] < 0 else f"rank {event['rank']}"
        wid = event.get("wid", -1)
        parts.append(f"{kind} {who}" + (f" win {wid}" if wid >= 0 else ""))
    if "lo" in event:
        parts.append(
            f"[{event['lo']}, {event['hi']}] {event['type']} "
            f"{event['file']}:{event['line']}"
        )
    marker = ""
    if "lo" in event:
        if _matches(event, bundle["new"]):
            marker = "  <-- racing access (new)"
        elif _matches(event, bundle["stored"]):
            marker = "  <-- racing access (stored)"
    return "  ".join(parts) + marker


def render_explain(bundle: dict, *, index: Optional[int] = None) -> str:
    """Annotated text diagnostic of one race (the ``repro explain`` body)."""
    lines: List[str] = []
    head = f"race {index}" if index is not None else "race"
    lines.append("=" * 72)
    lines.append(
        f"{head}: window {bundle['window']}, memory rank {bundle['rank']} "
        f"(detector {bundle['detector']}, phase {bundle['phase']})"
    )
    lines.append("=" * 72)
    lines.append(forensics_message(bundle))
    lines.append("")
    stored, new = bundle["stored"], bundle["new"]
    lines.append(
        f"  stored: {stored['type']:<10} [{stored['lo']}, {stored['hi']}] "
        f"issued by rank {stored['origin']} at {stored['file']}:{stored['line']}"
    )
    lines.append(
        f"  new:    {new['type']:<10} [{new['lo']}, {new['hi']}] "
        f"issued by rank {new['origin']} at {new['file']}:{new['line']}"
    )
    sync = bundle.get("sync") or {}
    if sync:
        bits = []
        epochs = sync.get("open_epochs")
        if epochs is not None:
            bits.append(f"open epochs on window: ranks {epochs}")
        gens = sync.get("flush_gens")
        if gens:
            bits.append(f"flush generations: {gens}")
        if sync.get("window_known") is False:
            bits.append("window unknown to the detector")
        if bits:
            lines.append("")
            lines.append("sync state at detection: " + "; ".join(bits))
    tree = bundle.get("tree")
    if tree:
        lines.append(
            f"racing store: {tree.get('nodes', 0)} nodes "
            f"(peak {tree.get('max_size', 0)}), "
            f"{tree.get('comparisons', 0)} comparisons, "
            f"{tree.get('queries', 0)} queries so far"
        )
    tl = bundle.get("timeline") or {}
    views: Dict[str, List[dict]] = tl.get("views", {})
    for rank_key in sorted(views, key=int):
        events = views[rank_key]
        lines.append("")
        lines.append(
            f"timeline of rank {rank_key} "
            f"(last {tl.get('k', 0)} events, lane {tl.get('lane')}):"
        )
        if not events:
            lines.append("  (no events retained)")
        for event in events:
            lines.append("  " + _fmt_event(event, bundle))
    return "\n".join(lines)


def render_explain_all(bundles: Iterable[dict]) -> str:
    """Concatenated diagnostics for every race of one analysis."""
    chunks = [
        render_explain(b, index=i) for i, b in enumerate(bundles)
    ]
    if not chunks:
        return "no races detected — nothing to explain."
    return "\n\n".join(chunks)

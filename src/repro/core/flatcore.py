"""The flat detector core: Algorithm 1 over struct-of-arrays state.

:class:`FlatDetector` is behaviorally identical to
:class:`~repro.core.detector.OurDetector` — same verdicts, same
forensics bundles, same ``bst.*`` / ``core.insert.*`` / ``detector.*``
metrics, same Table-4 node counts — but its per-event path runs on
interned record tuples (:mod:`repro.intervals.intern`) inside
:class:`~repro.bst.flat.FlatIntervalStore` columns: no ``MemoryAccess``
allocation, no dataclass ``replace``, no per-call predicate closure, no
recursive tree descent.  ``MemoryAccess`` objects are materialized only
at the cold edges (race reports, request-completion matching inputs).

Batch ingestion (:meth:`FlatDetector.ingest_batch`) is the second half
of the speedup: one chunk of trace events is fed through a loop that
hoists every loop-invariant — the obs registry, the alias-filter
policy, the open-epoch routing index — so the per-event cost is the
event-kind dispatch plus the record path itself.

The object core stays available behind ``REPRO_CORE=object`` (see
:data:`repro.pipeline.engine.DETECTOR_SPECS`) as the differential
oracle; ``tests/pipeline/test_core_parity.py`` asserts byte-identical
results between the two over the recorded workloads and the scenario
corpus.

Checkpoints: a ``repro-ckpt-v1`` detector snapshot carries its core
kind in the ``class`` field.  Restoring an object-core snapshot on the
flat core (or vice versa) raises a
:class:`~repro.pipeline.checkpoint.CheckpointError` naming both kinds —
the tree encodings differ, and silently adopting the wrong one would
resume to confidently wrong verdicts.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter_ns
from typing import List

from .. import obs
from ..aliasing import FilterPolicy
from ..bst.avl import TreeStats
from ..bst.flat import FlatIntervalStore
from ..intervals.intern import (
    ACCUMS,
    MIXED_ID,
    SITES,
    Rec,
    access_to_rec,
    rec_to_access,
)
from ..intervals.access import DebugInfo
from ..mpi.memory import RegionKind
from ..mpi.trace import LocalEvent, RmaEvent, SyncEvent
from . import insertion as _insertion
from .detector import COMPLETED_LOCALLY, OurDetector

__all__ = ["FlatDetector"]


def _cross_core_error(snap_core: str, this_core: str, env: str):
    from ..pipeline.checkpoint import CheckpointError

    return CheckpointError(
        f"repro-ckpt-v1 detector snapshot was written by the "
        f"{snap_core} but this analysis runs the {this_core}; "
        f"rerun with REPRO_CORE={env} to resume it, or re-analyze "
        f"from scratch")


class FlatDetector(OurDetector):
    """§4 detector on the flat core (see module docstring).

    ``name`` is inherited (\"Our Contribution\"): both cores are the
    same tool, so verdicts and per-tool metric keys stay identical.
    """

    #: property-test hook mirroring ``insert_access``'s injectable
    #: predicate: False inserts every access unconditionally (storage
    #: properties without verdict noise).  Not a user knob.
    race_check: bool = True

    # -- batch ingestion -------------------------------------------------------

    def ingest_batch(self, events, nranks: int, *, timeline=None,
                     lane=None) -> int:
        """Feed one chunk of trace events, hoisting per-event overhead.

        Same event→hook mapping as
        :func:`repro.pipeline.shard.dispatch_event` (sync events still
        go through it), same timeline feed-before-analyze ordering, so
        rings and forensics stay byte-identical to the per-event loop.
        """
        from ..pipeline.shard import dispatch_event

        try:
            n = len(events)
        except TypeError:
            events = list(events)
            n = len(events)
        feed_fanout = feed_lane = None
        if timeline is not None:
            if lane is None:
                feed_fanout = timeline.record_event_fanout
            else:
                feed_lane = timeline.record_event
        reg = obs.active()
        ingest = self._ingest
        filt = self.filter
        policy = filt.policy
        alias = policy is FilterPolicy.ALIAS
        keep_all = policy is FilterPolicy.ALL
        open_epochs = self._open_epochs
        # open epochs rarely change within a chunk: route local events
        # through a per-rank index, rebuilt only after sync events.
        # Built by one pass over the set, so for ranks with several
        # open epochs the relative order matches the set iteration
        # order the object core's ``on_local`` sees.
        by_rank: dict = {}
        for r, w in open_epochs:
            by_rank.setdefault(r, []).append(w)
        get_wids = by_rank.get
        # filter counters accumulate in locals and flush at sync events
        # and batch end — nothing reads them mid-batch (forensics
        # bundles carry tree/sync state only; the obs fold runs after
        # the analysis), and checkpoints land on chunk boundaries
        seen = 0
        kept = 0
        window = RegionKind.WINDOW
        stack = RegionKind.STACK
        local_cls = LocalEvent
        rma_cls = RmaEvent
        for event in events:
            if feed_fanout is not None:
                feed_fanout(event, nranks)
            elif feed_lane is not None:
                feed_lane(lane, event)
            cls = event.__class__
            if cls is local_cls:
                seen += 1
                region = event.region
                if alias:
                    if (region.kind is not window
                            and not region.may_alias_rma):
                        continue
                elif not keep_all and region.kind is stack:  # TSAN
                    continue
                kept += 1
                wids = get_wids(event.rank)
                if wids:
                    rank = event.rank
                    access = event.access
                    for wid in wids:
                        ingest(rank, wid, access, reg)
            elif cls is rma_cls:
                wid = event.wid
                ingest(event.rank, wid, event.origin_access, reg)
                ingest(event.target, wid, event.target_access, reg)
            else:
                # sync events (and any event subclasses) take the
                # shared per-event mapping; the epoch routing index is
                # then rebuilt — epoch starts/ends are sync events
                filt.seen += seen
                filt.kept += kept
                seen = kept = 0
                dispatch_event(self, event, nranks)
                by_rank = {}
                for r, w in open_epochs:
                    by_rank.setdefault(r, []).append(w)
                get_wids = by_rank.get
        filt.seen += seen
        filt.kept += kept
        return n

    def ingest_wire(self, payload, off: int, nevents: int, ctx,
                    nranks: int) -> int:
        """Algorithm 1 straight off a v2 chunk payload (no event objects).

        ``ctx`` is the :class:`~repro.pipeline.format.WireStream` the
        payload came from: the header enum tables, the shared wire
        string table, and the wire-id → interned-id caches.  A local
        the alias filter drops costs one flags-byte read plus two
        region-byte tests; a kept local builds its interned record
        directly from the wire integers — a ``MemoryAccess`` is only
        ever materialized for a race report.  Sync events are
        materialized and routed through
        :func:`~repro.pipeline.shard.dispatch_event`: they are rare
        and drive the epoch/window state machine.  The record stream
        entering :meth:`_ingest_rec` is identical to decoded-event
        ingestion, so verdicts, forensics, filter counters and obs
        metrics cannot diverge.
        """
        from ..mpi.errors import TraceFormatError
        from ..pipeline import format as _fmt
        from ..pipeline.shard import dispatch_event

        reg = obs.active()
        u32_at = _fmt._U32.unpack_from
        q_at = _fmt._I64.unpack_from
        local_at = _fmt._LOCAL.unpack_from
        rma_at = _fmt._RMA.unpack_from
        sync_at = _fmt._SYNC.unpack_from
        access_at = _fmt._ACCESS.unpack_from
        nlocal = _fmt._LOCAL.size
        nacc = _fmt._ACCESS.size
        nrma = _fmt._RMA.size
        nsync = _fmt._SYNC.size
        tag_local = _fmt._TAG_LOCAL
        tag_rma = _fmt._TAG_RMA
        tag_sync = _fmt._TAG_SYNC

        strings = ctx.strings
        access_table = ctx.access_table
        sync_table = ctx.sync_table
        region_table = ctx.region_table
        site_ids = ctx.site_ids
        accum_ids = ctx.accum_ids
        site_get = site_ids.get
        accum_get = accum_ids.get
        site_new = SITES.id_of
        accum_new = ACCUMS.id_of

        def access_rec(pos):
            # wire access → interned record; seq is 0 exactly as the
            # decoded path's take_access builds it
            flags = payload[pos]
            pos += 1
            lo, hi, tid, fid, line, origin, flush_gen = \
                access_at(payload, pos)
            pos += nacc
            if flags & 1:  # _FLAG_ACCUM
                aid = u32_at(payload, pos)[0]
                pos += 4
                naccum = accum_get(aid)
                if naccum is None:
                    naccum = accum_ids[aid] = accum_new(strings[aid])
            else:
                naccum = 0
            if flags & 2:  # _FLAG_EXCL
                excl = q_at(payload, pos)[0]
                pos += 8
            else:
                excl = None
            sk = fid << 32 | line
            nsite = site_get(sk)
            if nsite is None:
                nsite = site_ids[sk] = site_new(
                    DebugInfo(strings[fid], line))
            return (lo, hi, access_table[tid], nsite, origin, 0,
                    flush_gen, naccum, excl), pos

        ingest = self._ingest_rec
        filt = self.filter
        policy = filt.policy
        window = RegionKind.WINDOW
        stack = RegionKind.STACK
        # per-flags access size: the two optional fields are 4-byte
        # accum-op id (flag 1) and 8-byte exclusive epoch (flag 2)
        skiptab = (nacc, nacc + 4, nacc + 8, nacc + 12)
        # the filter decision is a pure function of the two region
        # bytes (kind id, may-alias — the writer emits 0/1): fold the
        # whole policy into one table lookup per local event
        if policy is FilterPolicy.ALL:
            droptab = bytes(2 * len(region_table))
        elif policy is FilterPolicy.ALIAS:
            droptab = bytes(
                1 if (k is not window and not rma) else 0
                for k in region_table for rma in (0, 1))
        else:  # TSAN-style: instrument everything but the stack
            droptab = bytes(
                1 if k is stack else 0
                for k in region_table for rma in (0, 1))
        by_rank: dict = {}
        for r, w in self._open_epochs:
            by_rank.setdefault(r, []).append(w)
        get_wids = by_rank.get
        seen = 0
        kept = 0
        for _ in range(nevents):
            tag = payload[off]
            off += 1
            if tag == tag_local:
                seen += 1
                fpos = off + nlocal
                flags = payload[fpos]
                rpos = fpos + 1 + skiptab[flags & 3]  # region bytes
                if droptab[payload[rpos] * 2 + payload[rpos + 1]]:
                    off = rpos + 2
                    continue
                kept += 1
                rank = local_at(payload, off)[1]
                wids = get_wids(rank)
                if wids:
                    # access_rec, inlined: this is the one hot decode
                    body = fpos + 1
                    lo, hi, tid, fid, line, origin, flush_gen = \
                        access_at(payload, body)
                    if flags & 1:
                        aid = u32_at(payload, body + nacc)[0]
                        naccum = accum_get(aid)
                        if naccum is None:
                            naccum = accum_ids[aid] = accum_new(
                                strings[aid])
                    else:
                        naccum = 0
                    excl = q_at(payload, rpos - 8)[0] if flags & 2 else None
                    sk = fid << 32 | line
                    nsite = site_get(sk)
                    if nsite is None:
                        nsite = site_ids[sk] = site_new(
                            DebugInfo(strings[fid], line))
                    nrec = (lo, hi, access_table[tid], nsite, origin, 0,
                            flush_gen, naccum, excl)
                    for wid in wids:
                        ingest(rank, wid, nrec, reg)
                off = rpos + 2
            elif tag == tag_rma:
                _seq, rank, target, wid = rma_at(payload, off)
                pos = off + nrma + 12  # skip op-string id + nbytes
                orec, pos = access_rec(pos)
                trec, pos = access_rec(pos)
                off = pos + 4  # skip the two region byte pairs
                ingest(rank, wid, orec, reg)
                ingest(target, wid, trec, reg)
            elif tag == tag_sync:
                seq, rank, kid, wid = sync_at(payload, off)
                off += nsync
                filt.seen += seen
                filt.kept += kept
                seen = kept = 0
                dispatch_event(
                    self, SyncEvent(seq, rank, sync_table[kid], wid),
                    nranks)
                by_rank = {}
                for r, w in self._open_epochs:
                    by_rank.setdefault(r, []).append(w)
                get_wids = by_rank.get
            else:
                raise TraceFormatError(f"unknown event tag {tag}")
        if off != len(payload):
            raise TraceFormatError(
                f"{len(payload) - off} trailing bytes in chunk")
        filt.seen += seen
        filt.kept += kept
        return nevents

    def on_local(self, rank, access, region) -> None:
        if not self.filter.instrument(region):
            return
        reg = obs.active()
        ingest = self._ingest
        # iteration without the defensive copy: _ingest never mutates
        # the epoch set
        for r, wid in self._open_epochs:
            if r == rank:
                ingest(rank, wid, access, reg)

    # -- Algorithm 1, flat -----------------------------------------------------

    def _record(self, rank: int, wid: int, access) -> None:
        self._ingest(rank, wid, access, obs.active())

    def _ingest(self, rank: int, wid: int, access, reg,
                _site_get=SITES._ids.get, _site_new=SITES.id_of,
                _accum_get=ACCUMS._ids.get, _accum_new=ACCUMS.id_of):
        """Intern one :class:`MemoryAccess` and run Algorithm 1 on it."""
        # intern inline (dict-probe fast path; id_of only on a miss)
        iv = access.interval
        debug = access.debug
        nsite = _site_get(debug)
        if nsite is None:
            nsite = _site_new(debug)
        ao = access.accum_op
        if ao is None:
            naccum = 0
        else:
            naccum = _accum_get(ao)
            if naccum is None:
                naccum = _accum_new(ao)
        self._ingest_rec(
            rank, wid,
            (iv.lo, iv.hi, access.type, nsite, access.origin, access.seq,
             access.flush_gen, naccum, access.excl_epoch),
            reg, access)

    def _ingest_rec(self, rank: int, wid: int, nrec: Rec, reg,
                    access=None) -> None:
        """Algorithm 1 on an interned record (the wire path's entry).

        ``access`` is the already-materialized :class:`MemoryAccess`
        when the caller had one; the fused wire path passes ``None``
        and an equal object is rebuilt from ``nrec`` only if a race is
        actually reported.
        """
        nlo, nhi, ntype, nsite, norigin, _, nflush, naccum, nexcl = nrec
        key = (rank, wid)
        store = self._stores.get(key)
        if store is None:
            store = FlatIntervalStore(balanced=self._balanced)
            self._stores[key] = store
        self._processed += 1
        enabled = reg.enabled
        timed = False
        if enabled:
            if reg is not self._obs_reg:
                self._bind_obs(reg)
            self._c_events.value += 1
            hot = _insertion._HOT
            if hot is None or hot.reg is not reg:
                hot = _insertion._bind_hot(reg)
            hot.accesses.value += 1
            t = reg._tick + 1
            reg._tick = t
            timed = not (t & reg.SAMPLE_MASK)
            if timed:
                t0 = perf_counter_ns()
        stats = store.stats
        w0 = stats.comparisons + stats.rotations

        inter = store.find_overlapping(nlo - 1 if nlo > 0 else 0, nhi + 1)
        if timed:
            t1 = perf_counter_ns()
            reg.phase_ns("insert.query", t1 - t0)

        # race check over the truly-overlapping subset (predicate of
        # OurDetector._predicate, inlined: §6 flush exemptions first,
        # then the is_race conditions — overlap is already known)
        overlapping = False
        conflict = None
        if self.race_check:
            for r in inter:
                if r[0] < nhi and nlo < r[1]:
                    overlapping = True
                    stype = r[2]
                    if stype >= 2 and r[4] == norigin:
                        fg = r[6]
                        if fg == COMPLETED_LOCALLY:
                            continue  # completed by the issuer's MPI_Wait
                        if fg < self._flush_gens.get((wid, norigin), 0):
                            continue  # completed by the issuer's own flush
                    if stype < 2 and ntype < 2:
                        continue  # no RMA access involved
                    if not (stype & 1 or ntype & 1):
                        continue  # no write involved
                    saccum = r[7]
                    if saccum and naccum and (
                            saccum == naccum or r[4] == norigin):
                        continue  # §2.1 accumulate atomicity/ordering
                    sexcl = r[8]
                    if (sexcl is not None and nexcl is not None
                            and sexcl != nexcl):
                        continue  # serialized by exclusive lock epochs
                    if r[4] == norigin and stype < 2:
                        continue  # local completed before the RMA call
                    conflict = r
                    break
        else:
            for r in inter:
                if r[0] < nhi and nlo < r[1]:
                    overlapping = True
                    break

        if conflict is not None:
            if enabled:
                hot.races.value += 1
                if timed:
                    reg.phase_ns("insert.race_check",
                                 perf_counter_ns() - t1)
            self.work_units += stats.comparisons + stats.rotations - w0
            if access is None:
                access = rec_to_access(nrec)
            self._report(rank, wid, rec_to_access(conflict), access,
                         phase="data_race_detection")
            self._note_high_water(key)
            return
        if timed:
            t2 = perf_counter_ns()
            reg.phase_ns("insert.race_check", t2 - t1)
            t1 = t2

        # no-op fast path: one stored access subsumes the new one
        if len(inter) == 1:
            r = inter[0]
            if r[0] <= nlo and nhi <= r[1]:
                # stored wins the Table-1 combination (new's rank is
                # strictly lower), or the two are same-site equivalent
                if ntype < r[2] or (
                        r[2] == ntype and r[3] == nsite
                        and r[4] == norigin and r[6] == nflush
                        and r[7] == naccum):
                    if enabled:
                        hot.fastpath.value += 1
                        self._c_fragments.value += 1
                    self.work_units += (
                        stats.comparisons + stats.rotations - w0)
                    return

        if not overlapping:
            # adjacency only: merging is the one possible simplification
            g_lo = nlo
            g_hi = nhi
            absorbed: List[Rec] = []
            if self.enable_merge:
                for r in inter:
                    if ((g_hi == r[0] or r[1] == g_lo)
                            and r[2] == ntype and r[3] == nsite
                            and r[4] == norigin and r[6] == nflush
                            and r[7] == naccum):
                        if r[0] < g_lo:
                            g_lo = r[0]
                        if r[1] > g_hi:
                            g_hi = r[1]
                        absorbed.append(r)
            if absorbed:
                for r in absorbed:
                    store.remove(r)
                store.insert((g_lo, g_hi) + nrec[2:])
            else:
                store.insert(nrec)
            if enabled:
                if absorbed:
                    hot.merges.value += len(absorbed)
                if timed:
                    reg.phase_ns("insert.merge", perf_counter_ns() - t1)
                self._c_fragments.value += 1
                if absorbed:
                    # merged(1) < removed+1 whenever anything was absorbed
                    self._c_merges.value += len(absorbed)
            self.work_units += stats.comparisons + stats.rotations - w0
            return

        # general case: fragmentation (§4.1) by boundary sweep — inter
        # is disjoint and key-ordered, exactly the sweep precondition
        cuts = {nlo, nhi}
        for r in inter:
            cuts.add(r[0])
            cuts.add(r[1])
        points = sorted(cuts)
        frags: List[Rec] = []
        si = 0
        ninter = len(inter)
        ntail = nrec[2:]
        for pi in range(len(points) - 1):
            lo = points[pi]
            hi = points[pi + 1]
            while si < ninter and inter[si][1] <= lo:
                si += 1
            if si < ninter:
                cur = inter[si]
                covering = cur[0] < hi and lo < cur[1]
            else:
                covering = False
            in_new = nlo <= lo and hi <= nhi
            if covering and in_new:
                # Table-1 combination: the higher rank wins, ties keep
                # the new access (AccessType's int value IS the rank)
                if ntype >= cur[2]:
                    f = (lo, hi) + ntail
                else:
                    f = (lo, hi) + cur[2:]
                if (cur[7] or naccum) and cur[7] != naccum:
                    f = f[:7] + (MIXED_ID, f[8])
                frags.append(f)
            elif covering:
                frags.append((lo, hi) + cur[2:])
            elif in_new:
                frags.append((lo, hi) + ntail)
            # else: a gap outside both — nothing stored there
        if timed:
            t2 = perf_counter_ns()
            reg.phase_ns("insert.fragment", t2 - t1)

        # merging (§4.2): frags are already address-ordered and
        # disjoint; coalesce adjacent same-site runs, keeping the
        # earlier fragment's provenance fields
        if self.enable_merge and frags:
            merged = [frags[0]]
            for f in frags[1:]:
                p = merged[-1]
                if ((p[1] == f[0] or f[1] == p[0])
                        and p[2] == f[2] and p[3] == f[3]
                        and p[4] == f[4] and p[6] == f[6]
                        and p[7] == f[7]):
                    merged[-1] = (
                        p[0] if p[0] < f[0] else f[0],
                        p[1] if p[1] > f[1] else f[1]) + p[2:]
                else:
                    merged.append(f)
        else:
            merged = frags
        if enabled:
            hot.fragments.value += len(frags)
            if len(merged) < len(frags):
                hot.merges.value += len(frags) - len(merged)
            if timed:
                t1 = perf_counter_ns()
                reg.phase_ns("insert.merge", t1 - t2)

        # apply only the delta (order mirrors the object core's
        # Counter-based finish_insertion)
        old_c = Counter(inter)
        new_c = Counter(merged)
        for r in (old_c - new_c).elements():
            if not store.remove(r):  # pragma: no cover - tree corruption
                raise RuntimeError(f"access {r} vanished from the BST")
        for r in (new_c - old_c).elements():
            store.insert(r)
        if timed:
            reg.phase_ns("insert.apply", perf_counter_ns() - t1)
        self.work_units += stats.comparisons + stats.rotations - w0
        if enabled:
            self._c_fragments.value += len(merged)
            nrem = sum((old_c - new_c).values())
            if nrem and len(merged) < nrem + 1:
                self._c_merges.value += nrem + 1 - len(merged)
        # no per-record high-water update: ``stats.max_size`` is
        # monotone for a store's lifetime and every store is noted
        # (``_note_high_water``) at epoch end, window free, barrier
        # prune, and ``node_stats`` — the recorded peak is identical

    # -- storage ---------------------------------------------------------------

    def _store(self, rank: int, wid: int) -> FlatIntervalStore:
        key = (rank, wid)
        store = self._stores.get(key)
        if store is None:
            store = FlatIntervalStore(balanced=self._balanced)
            self._stores[key] = store
        return store

    # -- §6 synchronization handling -------------------------------------------

    def on_request_complete(self, rank: int, wid: int, access) -> None:
        store = self._stores.get((rank, wid))
        if store is None:
            return
        arec = access_to_rec(access)
        for r in store.find_overlapping(arec[0], arec[1]):
            if r == arec:
                store.remove(r)
                store.insert(r[:6] + (COMPLETED_LOCALLY,) + r[7:])
                return

    def on_barrier(self) -> None:
        gens = self._flush_gens
        for (rank, wid), store in self._stores.items():
            if not store:
                continue
            survivors: List[Rec] = []
            pruned = False
            for r in store:
                if r[2] < 2:  # local access: completed at the barrier
                    pruned = True
                    continue
                if r[6] < gens.get((wid, r[4]), 0):
                    pruned = True
                    continue
                survivors.append(r)
            if pruned:
                self._note_high_water((rank, wid))
                stats = store.stats
                w0 = stats.comparisons + stats.rotations
                store.clear()
                for r in survivors:
                    store.insert(r)
                self.work_units += (
                    stats.comparisons + stats.rotations - w0
                    + len(survivors))

    # -- checkpointing ---------------------------------------------------------
    # (_encode_state is inherited: it calls each store's save_state(),
    # which the flat store provides in its own column layout)

    def _decode_state(self, state: dict) -> dict:
        state["_stores"] = {
            key: FlatIntervalStore.from_state(s)
            for key, s in state["_stores"].items()}
        state["_closed_stats"] = TreeStats.from_dict(state["_closed_stats"])
        return state

    def restore(self, snap: dict) -> None:
        if snap.get("class") == "OurDetector":
            raise _cross_core_error(
                "object core (OurDetector)", "flat core (FlatDetector)",
                "object")
        super().restore(snap)

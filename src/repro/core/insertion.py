"""Algorithm 1 of the paper: the new BST insertion algorithm.

::

    function insert_BST(newAcc, BST)
        hasError <- data_race_detection(newAcc, BST)
        if !hasError then
            interAcc  <- get_intersecting_accesses(newAcc, BST)
            fragAcc   <- fragment_accesses(interAcc, newAcc)
            mergedAcc <- merge_accesses(fragAcc)
            finish_insertion(interAcc, mergedAcc, BST)

Implementation notes:

* ``data_race_detection`` uses the *correct* interval-tree overlap query
  (the augmented search of :class:`IntervalBST`), which is what removes
  the original tool's lower-bound false negatives together with the
  disjointness invariant.
* ``get_intersecting_accesses`` widens the query by one byte on each
  side so that *adjacent* stored accesses are retrieved too: they flow
  through fragmentation untouched and give the merging step (§4.2) the
  chance to coalesce them with the new fragments.  Without this widening
  the Code-2 loop (adjacent one-byte Gets) could never merge.
* ``finish_insertion`` swaps the old nodes for the merged fragments,
  keeping the BST's accesses pairwise disjoint — the invariant the whole
  scheme relies on.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, List, Optional, Sequence

from ..bst import IntervalBST
from ..intervals import Interval, MemoryAccess, is_race
from ..intervals.combine import combined_type
from .fragmentation import fragment_accesses
from .merging import merge_accesses

__all__ = [
    "data_race_detection",
    "get_intersecting_accesses",
    "finish_insertion",
    "insert_access",
    "InsertOutcome",
]

RacePredicate = Callable[[MemoryAccess, MemoryAccess], bool]


class InsertOutcome:
    """Result of one :func:`insert_access` call.

    ``conflict`` is the stored access that races with the new one (None
    when the insertion succeeded), and ``merged`` the fragments that
    replaced the old nodes (empty on a race — the paper's tool aborts
    before inserting).
    """

    __slots__ = ("conflict", "merged", "removed")

    def __init__(
        self,
        conflict: Optional[MemoryAccess],
        merged: Sequence[MemoryAccess],
        removed: Sequence[MemoryAccess],
    ) -> None:
        self.conflict = conflict
        self.merged = list(merged)
        self.removed = list(removed)

    @property
    def has_race(self) -> bool:
        return self.conflict is not None


def data_race_detection(
    new: MemoryAccess,
    bst: IntervalBST,
    predicate: RacePredicate = is_race,
) -> Optional[MemoryAccess]:
    """Return the first stored access racing with ``new`` (or None).

    The scan is deterministic (address order) so reports are stable.
    """
    for stored in bst.find_overlapping(new.interval):
        if predicate(stored, new):
            return stored
    return None


def get_intersecting_accesses(
    new: MemoryAccess, bst: IntervalBST
) -> List[MemoryAccess]:
    """Stored accesses intersecting *or adjacent to* ``new`` (see module doc)."""
    lo = max(0, new.interval.lo - 1)
    hi = new.interval.hi + 1
    return bst.find_overlapping(Interval(lo, hi))


def finish_insertion(
    inter: Sequence[MemoryAccess],
    merged: Sequence[MemoryAccess],
    bst: IntervalBST,
) -> None:
    """Replace the retrieved old accesses with the merged fragments."""
    for acc in inter:
        removed = bst.remove(acc)
        if not removed:  # pragma: no cover - would indicate tree corruption
            raise RuntimeError(f"access {acc} vanished from the BST")
    for acc in merged:
        bst.insert(acc)


def insert_access(
    new: MemoryAccess,
    bst: IntervalBST,
    *,
    predicate: RacePredicate = is_race,
    merge: bool = True,
) -> InsertOutcome:
    """Run Algorithm 1 for one access; never raises on a race.

    On a race, the BST is left untouched (the real tool aborts with
    MPI_Abort at this point; our harness records the report and lets the
    caller decide).

    Implementation notes (all behaviour-preserving):

    * the race check and the intersection retrieval share one widened
      tree traversal — the check only needs the truly-overlapping subset
      of what the retrieval fetches;
    * when nothing overlaps, fragmentation is the identity, so the new
      access is either coalesced with a same-site adjacent neighbour or
      inserted directly;
    * in the general case only the *delta* between the old nodes and the
      merged fragments touches the tree — fragments that came out
      unchanged stay where they are.
    """
    inter = get_intersecting_accesses(new, bst)
    overlapping = False
    for stored in inter:
        if stored.interval.overlaps(new.interval):
            overlapping = True
            if predicate(stored, new):
                return InsertOutcome(stored, (), ())

    # no-op fast path: a single stored access already subsumes the new
    # one (covers its range with a dominating-or-identical type and the
    # same provenance) — fragmenting would reproduce it byte for byte
    if len(inter) == 1:
        stored = inter[0]
        if stored.interval.contains_interval(new.interval):
            _t, which = combined_type(stored.type, new.type)
            if which == 1 or stored.same_site(new):
                return InsertOutcome(None, [stored], ())

    if not overlapping:
        # adjacency only: merging is the single possible simplification
        grown = new
        absorbed: List[MemoryAccess] = []
        if merge:
            for stored in inter:
                if grown.interval.is_adjacent(stored.interval) and stored.same_site(grown):
                    grown = grown.with_interval(grown.interval.union(stored.interval))
                    absorbed.append(stored)
        for stored in absorbed:
            bst.remove(stored)
        bst.insert(grown)
        return InsertOutcome(None, [grown], absorbed)

    frags = fragment_accesses(inter, new)
    merged = merge_accesses(frags) if merge else frags
    old_c = Counter(inter)
    new_c = Counter(merged)
    removed = list((old_c - new_c).elements())
    added = list((new_c - old_c).elements())
    for acc in removed:
        ok = bst.remove(acc)
        if not ok:  # pragma: no cover - would indicate tree corruption
            raise RuntimeError(f"access {acc} vanished from the BST")
    for acc in added:
        bst.insert(acc)
    return InsertOutcome(None, merged, removed)

"""Algorithm 1 of the paper: the new BST insertion algorithm.

::

    function insert_BST(newAcc, BST)
        hasError <- data_race_detection(newAcc, BST)
        if !hasError then
            interAcc  <- get_intersecting_accesses(newAcc, BST)
            fragAcc   <- fragment_accesses(interAcc, newAcc)
            mergedAcc <- merge_accesses(fragAcc)
            finish_insertion(interAcc, mergedAcc, BST)

Implementation notes:

* ``data_race_detection`` uses the *correct* interval-tree overlap query
  (the augmented search of :class:`IntervalBST`), which is what removes
  the original tool's lower-bound false negatives together with the
  disjointness invariant.
* ``get_intersecting_accesses`` widens the query by one byte on each
  side so that *adjacent* stored accesses are retrieved too: they flow
  through fragmentation untouched and give the merging step (§4.2) the
  chance to coalesce them with the new fragments.  Without this widening
  the Code-2 loop (adjacent one-byte Gets) could never merge.
* ``finish_insertion`` swaps the old nodes for the merged fragments,
  keeping the BST's accesses pairwise disjoint — the invariant the whole
  scheme relies on.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter_ns
from typing import Callable, List, Optional, Sequence

from .. import obs
from ..bst import IntervalBST
from ..intervals import Interval, MemoryAccess, is_race
from ..intervals.combine import combined_type
from .fragmentation import fragment_accesses
from .merging import merge_accesses

__all__ = [
    "data_race_detection",
    "get_intersecting_accesses",
    "finish_insertion",
    "insert_access",
    "InsertOutcome",
]

RacePredicate = Callable[[MemoryAccess, MemoryAccess], bool]


class _HotCounters:
    """Counter handles of the insertion hot path, bound to one registry.

    ``insert_access`` runs once per recorded access; going through
    ``Registry.counter`` (key format + dict probe) at that frequency is
    what the <=5% metrics-on budget cannot afford.  The handles are
    cached at module level — registries are strictly per-process and
    single-threaded, and the identity check below rebinds after any
    ``obs.scope()`` / ``obs.reset()`` swap.
    """

    __slots__ = ("reg", "accesses", "races", "fastpath", "merges",
                 "fragments")

    def __init__(self, reg) -> None:
        self.reg = reg
        self.accesses = reg.counter("core.insert.accesses")
        self.races = reg.counter("core.insert.races")
        self.fastpath = reg.counter("core.insert.fastpath")
        self.merges = reg.counter("core.insert.merges")
        self.fragments = reg.counter("core.insert.fragments")


_HOT: Optional[_HotCounters] = None


def _bind_hot(reg) -> _HotCounters:
    global _HOT
    _HOT = _HotCounters(reg)
    return _HOT


class InsertOutcome:
    """Result of one :func:`insert_access` call.

    ``conflict`` is the stored access that races with the new one (None
    when the insertion succeeded), and ``merged`` the fragments that
    replaced the old nodes (empty on a race — the paper's tool aborts
    before inserting).
    """

    __slots__ = ("conflict", "merged", "removed")

    def __init__(
        self,
        conflict: Optional[MemoryAccess],
        merged: Sequence[MemoryAccess],
        removed: Sequence[MemoryAccess],
    ) -> None:
        self.conflict = conflict
        self.merged = list(merged)
        self.removed = list(removed)

    @property
    def has_race(self) -> bool:
        return self.conflict is not None


def data_race_detection(
    new: MemoryAccess,
    bst: IntervalBST,
    predicate: RacePredicate = is_race,
) -> Optional[MemoryAccess]:
    """Return the first stored access racing with ``new`` (or None).

    The scan is deterministic (address order) so reports are stable.
    """
    for stored in bst.find_overlapping(new.interval):
        if predicate(stored, new):
            return stored
    return None


def get_intersecting_accesses(
    new: MemoryAccess, bst: IntervalBST
) -> List[MemoryAccess]:
    """Stored accesses intersecting *or adjacent to* ``new`` (see module doc)."""
    lo = max(0, new.interval.lo - 1)
    hi = new.interval.hi + 1
    return bst.find_overlapping(Interval(lo, hi))


def finish_insertion(
    inter: Sequence[MemoryAccess],
    merged: Sequence[MemoryAccess],
    bst: IntervalBST,
) -> None:
    """Replace the retrieved old accesses with the merged fragments."""
    for acc in inter:
        removed = bst.remove(acc)
        if not removed:  # pragma: no cover - would indicate tree corruption
            raise RuntimeError(f"access {acc} vanished from the BST")
    for acc in merged:
        bst.insert(acc)


def insert_access(
    new: MemoryAccess,
    bst: IntervalBST,
    *,
    predicate: RacePredicate = is_race,
    merge: bool = True,
) -> InsertOutcome:
    """Run Algorithm 1 for one access; never raises on a race.

    On a race, the BST is left untouched (the real tool aborts with
    MPI_Abort at this point; our harness records the report and lets the
    caller decide).

    Implementation notes (all behaviour-preserving):

    * the race check and the intersection retrieval share one widened
      tree traversal — the check only needs the truly-overlapping subset
      of what the retrieval fetches;
    * when nothing overlaps, fragmentation is the identity, so the new
      access is either coalesced with a same-site adjacent neighbour or
      inserted directly;
    * in the general case only the *delta* between the old nodes and the
      merged fragments touches the tree — fragments that came out
      unchanged stay where they are.
    """
    # Counters stay exact through cached handles (plain int adds); the
    # per-phase timings use the two-clock-read accumulation pattern
    # (Registry.phase_ns) on 1-in-64 sampled calls only — this function
    # runs once per recorded access, and both per-call registry lookups
    # and unconditional clock reads blow the <=5% metrics-on overhead
    # budget (BENCH_obs_overhead.json).  Sampled phase totals are a
    # profile: compare them to each other, not to wall time.
    reg = obs.active()
    enabled = reg.enabled
    timed = False
    if enabled:
        hot = _HOT
        if hot is None or hot.reg is not reg:
            hot = _bind_hot(reg)
        hot.accesses.value += 1
        t = reg._tick + 1
        reg._tick = t
        timed = not (t & reg.SAMPLE_MASK)
        if timed:
            t0 = perf_counter_ns()
    inter = get_intersecting_accesses(new, bst)
    if timed:
        t1 = perf_counter_ns()
        reg.phase_ns("insert.query", t1 - t0)
    overlapping = False
    for stored in inter:
        if stored.interval.overlaps(new.interval):
            overlapping = True
            if predicate(stored, new):
                if enabled:
                    hot.races.value += 1
                    if timed:
                        reg.phase_ns("insert.race_check",
                                     perf_counter_ns() - t1)
                return InsertOutcome(stored, (), ())
    if timed:
        t2 = perf_counter_ns()
        reg.phase_ns("insert.race_check", t2 - t1)
        t1 = t2

    # no-op fast path: a single stored access already subsumes the new
    # one (covers its range with a dominating-or-identical type and the
    # same provenance) — fragmenting would reproduce it byte for byte
    if len(inter) == 1:
        stored = inter[0]
        if stored.interval.contains_interval(new.interval):
            _t, which = combined_type(stored.type, new.type)
            if which == 1 or stored.same_site(new):
                if enabled:
                    hot.fastpath.value += 1
                return InsertOutcome(None, [stored], ())

    if not overlapping:
        # adjacency only: merging is the single possible simplification
        grown = new
        absorbed: List[MemoryAccess] = []
        if merge:
            for stored in inter:
                if grown.interval.is_adjacent(stored.interval) and stored.same_site(grown):
                    grown = grown.with_interval(grown.interval.union(stored.interval))
                    absorbed.append(stored)
        for stored in absorbed:
            bst.remove(stored)
        bst.insert(grown)
        if enabled:
            if absorbed:
                hot.merges.value += len(absorbed)
            if timed:
                reg.phase_ns("insert.merge", perf_counter_ns() - t1)
        return InsertOutcome(None, [grown], absorbed)

    frags = fragment_accesses(inter, new)
    if timed:
        t2 = perf_counter_ns()
        reg.phase_ns("insert.fragment", t2 - t1)
    merged = merge_accesses(frags) if merge else frags
    if enabled:
        hot.fragments.value += len(frags)
        if len(merged) < len(frags):
            hot.merges.value += len(frags) - len(merged)
        if timed:
            t1 = perf_counter_ns()
            reg.phase_ns("insert.merge", t1 - t2)
    old_c = Counter(inter)
    new_c = Counter(merged)
    removed = list((old_c - new_c).elements())
    added = list((new_c - old_c).elements())
    for acc in removed:
        ok = bst.remove(acc)
        if not ok:  # pragma: no cover - would indicate tree corruption
            raise RuntimeError(f"access {acc} vanished from the BST")
    for acc in added:
        bst.insert(acc)
    if timed:
        reg.phase_ns("insert.apply", perf_counter_ns() - t1)
    return InsertOutcome(None, merged, removed)

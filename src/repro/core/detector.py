"""Our contribution: RMA-Analyzer with the new insertion algorithm.

This is the paper's §4 detector end to end:

* the race check uses the *correct* interval-tree overlap query and the
  order-aware predicate (§5.2 fix for ``Load``-then-``MPI_Get``),
* insertion runs Algorithm 1 — fragmentation (§4.1) keeps the stored
  accesses disjoint, merging (§4.2) keeps the BST small,
* ``MPI_Win_flush(_all)`` is handled precisely per the §6 discussion:
  a flush bumps the issuer's generation; a stored RMA access whose
  generation predates its issuer's current flush is *completed*, so a
  later access by the **same** issuer no longer races with it.  Other
  ranks' accesses still do — clearing the whole BST at a flush would be
  the false-negative trap §6 warns about.
* ``MPI_Barrier`` after a flush is the §6-recommended full sync: at a
  barrier, completed accesses (local ones, and flushed RMA ones) are
  pruned — everything after the barrier is happens-after them.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .. import obs
from ..aliasing import FilterPolicy
from ..detectors.bst_common import BstDetector
from ..intervals import MemoryAccess, is_race
from .insertion import insert_access

#: sentinel flush generation: the access was completed *locally* by an
#: MPI_Wait on its request (request-based RMA); later accesses of the
#: same origin are ordered after it, other ranks' accesses are not
COMPLETED_LOCALLY = -1

__all__ = ["OurDetector"]


class OurDetector(BstDetector):
    """RMA-Analyzer + the paper's new insertion algorithm (§4)."""

    name = "Our Contribution"

    _CKPT_SKIP = BstDetector._CKPT_SKIP | {"_c_fragments", "_c_merges"}

    def __init__(self, *, enable_merge: bool = True, **kwargs) -> None:
        """``enable_merge=False`` gives the fragmentation-only ablation —
        the node-explosion variant §4.1 warns about."""
        kwargs.setdefault("filter_policy", FilterPolicy.ALIAS)
        super().__init__(**kwargs)
        self.enable_merge = enable_merge
        # current flush generation per (wid, issuer)
        self._flush_gens: Dict[Tuple[int, int], int] = {}
        # fragment/merge outcomes live in the obs registry (the former
        # hand-rolled integer attributes duplicated what the metrics
        # layer now collects); the properties below read them back
        self._k_fragments = obs.metric_key("detector.fragments",
                                           {"tool": self.name})
        self._k_merges = obs.metric_key("detector.merges",
                                        {"tool": self.name})

    def _bind_obs(self, reg) -> None:
        super()._bind_obs(reg)
        self._c_fragments = reg.counter(self._k_fragments)
        self._c_merges = reg.counter(self._k_merges)

    @property
    def fragments_created(self) -> int:
        """Fragments stored by this tool (process-registry counter)."""
        return obs.active().counter(self._k_fragments).value

    @property
    def merges_performed(self) -> int:
        """Node merges performed by this tool (process-registry counter)."""
        return obs.active().counter(self._k_merges).value

    # -- predicate with the §6 flush exemption -----------------------------------

    def _predicate(self, wid: int) -> Callable[[MemoryAccess, MemoryAccess], bool]:
        gens = self._flush_gens

        def pred(stored: MemoryAccess, new: MemoryAccess) -> bool:
            if stored.is_rma and stored.origin == new.origin:
                if stored.flush_gen == COMPLETED_LOCALLY:
                    return False  # completed by the issuer's MPI_Wait
                if stored.flush_gen < gens.get((wid, stored.origin), 0):
                    return False  # completed by the issuer's own flush
            return is_race(stored, new)

        return pred

    # -- the new insertion algorithm -------------------------------------------------

    def _record(self, rank: int, wid: int, access: MemoryAccess) -> None:
        bst = self._store(rank, wid)
        self._processed += 1
        reg = obs.active()
        enabled = reg.enabled
        if enabled:
            if reg is not self._obs_reg:
                self._bind_obs(reg)
            self._c_events.value += 1
        stats = bst.stats
        w0 = stats.comparisons + stats.rotations
        outcome = insert_access(
            access, bst, predicate=self._predicate(wid),
            merge=self.enable_merge,
        )
        self.work_units += stats.comparisons + stats.rotations - w0
        if outcome.has_race:
            assert outcome.conflict is not None
            self._report(rank, wid, outcome.conflict, access,
                         phase="data_race_detection")
        elif enabled:
            self._c_fragments.value += len(outcome.merged)
            removed = len(outcome.removed)
            if removed and len(outcome.merged) < removed + 1:
                self._c_merges.value += removed + 1 - len(outcome.merged)
        self._note_high_water((rank, wid))

    # _check/_insert are folded into _record (Algorithm 1 is one pass)
    def _check(self, bst, access, rank, wid) -> None:  # pragma: no cover
        raise AssertionError("OurDetector uses _record directly")

    def _insert(self, bst, access) -> None:  # pragma: no cover
        raise AssertionError("OurDetector uses _record directly")

    def forensic_sync_state(self, wid: int) -> dict:
        """Epoch state plus the §6 flush generations of this window."""
        state = super().forensic_sync_state(wid)
        gens = {
            str(issuer): gen
            for (w, issuer), gen in sorted(self._flush_gens.items())
            if w == wid
        }
        if gens:
            state["flush_gens"] = gens
        return state

    # -- §6 synchronization handling -----------------------------------------------------

    def on_flush(self, rank: int, wid: int) -> None:
        key = (wid, rank)
        self._flush_gens[key] = self._flush_gens.get(key, 0) + 1

    def on_request_complete(self, rank: int, wid: int, access) -> None:
        """MPI_Wait on a request: the op's *origin side* is complete.

        The target side is NOT (passive target: local completion only —
        the §6 family of subtleties), so only the origin-side access is
        marked; races with other ranks stay detectable.
        """
        bst = self._stores.get((rank, wid))
        if bst is None:
            return
        for stored in bst.find_overlapping(access.interval):
            if stored == access:
                bst.remove(stored)
                done = MemoryAccess(
                    stored.interval, stored.type, stored.debug,
                    stored.origin, stored.seq, COMPLETED_LOCALLY,
                    stored.accum_op, stored.excl_epoch,
                )
                bst.insert(done)
                return

    def on_barrier(self) -> None:
        """Prune completed accesses: they happen-before everything coming."""
        gens = self._flush_gens
        for (rank, wid), bst in self._stores.items():
            if not len(bst):
                continue
            survivors = []
            pruned = False
            for acc in bst:
                if acc.type.is_local:
                    pruned = True
                    continue
                if acc.flush_gen < gens.get((wid, acc.origin), 0):
                    pruned = True
                    continue
                survivors.append(acc)
            if pruned:
                self._note_high_water((rank, wid))
                w0 = bst.stats.comparisons + bst.stats.rotations
                bst.clear()
                for acc in survivors:
                    bst.insert(acc)
                self.work_units += (
                    bst.stats.comparisons + bst.stats.rotations - w0
                    + len(survivors)
                )

    def restore(self, snap: dict) -> None:
        # guard only the object core itself: FlatDetector subclasses
        # this and routes its own snapshots through super().restore()
        if snap.get("class") == "FlatDetector" and type(self) is OurDetector:
            from ..pipeline.checkpoint import CheckpointError

            raise CheckpointError(
                "repro-ckpt-v1 detector snapshot was written by the "
                "flat core (FlatDetector) but this analysis runs the "
                "object core (OurDetector); unset REPRO_CORE=object to "
                "resume it, or re-analyze from scratch")
        super().restore(snap)

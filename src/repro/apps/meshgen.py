"""Partitioned unstructured-mesh stand-in for the CFD-Proxy workload.

CFD-Proxy operates on a partitioned unstructured mesh and exchanges
halo (ghost-cell) data with a small, fixed set of neighbouring
partitions.  For the reproduction only the *communication structure*
matters: which ranks are neighbours and how many halo cells each pair
exchanges.  We build a ring-of-partitions topology (each rank talks to
``halo_width`` neighbours on each side), the classic 1-D decomposition
of a banded mesh, with per-pair halo sizes derived deterministically
from the cell count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["MeshPartition", "make_partitions"]


@dataclass(frozen=True)
class MeshPartition:
    """One rank's share of the mesh."""

    rank: int
    ncells: int
    #: neighbour rank -> number of halo cells exchanged with it
    halo: Dict[int, int]

    @property
    def neighbors(self) -> List[int]:
        return sorted(self.halo)

    @property
    def halo_cells_total(self) -> int:
        return sum(self.halo.values())


def make_partitions(
    nranks: int,
    cells_per_rank: int = 512,
    halo_width: int = 1,
    halo_fraction: float = 0.05,
) -> List[MeshPartition]:
    """A ring decomposition: rank r exchanges halos with r +/- 1..halo_width.

    ``halo_fraction`` of a partition's cells sit on each shared boundary
    (at least one cell).  With fewer than three ranks the ring
    degenerates gracefully (two ranks share one boundary; one rank has
    no neighbours).
    """
    if nranks < 1:
        raise ValueError("need at least one rank")
    if not 0 < halo_fraction <= 1:
        raise ValueError("halo_fraction must be in (0, 1]")
    halo_cells = max(1, int(cells_per_rank * halo_fraction))
    parts: List[MeshPartition] = []
    for r in range(nranks):
        halo: Dict[int, int] = {}
        for d in range(1, halo_width + 1):
            for nb in ((r - d) % nranks, (r + d) % nranks):
                if nb != r:
                    # farther neighbours share shorter boundaries
                    halo[nb] = max(1, halo_cells // d)
        parts.append(MeshPartition(r, cells_per_rank, halo))
    return parts

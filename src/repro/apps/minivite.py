"""MiniVite-like application: one phase of distributed Louvain.

MiniVite (Ghosh et al., IPDPS'18) implements a single phase of the
Louvain community-detection method in distributed memory; the paper uses
its MPI-RMA variant as the "hard" evaluation workload (Figs 11/12,
Table 4): one ``lock_all``/``unlock_all`` epoch per sweep, one
``MPI_Put`` of packed ``(vertex, community)`` pairs per communication
partner (the Fig. 9a code), and — crucially — per-vertex accesses to
*attributes of adjacent objects* whose memory is **not** adjacent, which
is why the paper's merging algorithm barely reduces this BST (<7%,
Table 4).

The reproduction keeps exactly those access-pattern properties:

* per local vertex, the sweep issues instrumented loads/stores on an
  array-of-structs (24-byte stride), each attribute at its own source
  line — neither stride-separated same-line accesses nor adjacent
  different-line accesses can merge;
* boundary updates are packed into a send buffer (instrumented,
  same-line, adjacent stores — the *small* merge opportunity that grows
  as blocks shrink with more ranks) and shipped with one ``MPI_Put`` per
  partner into a per-origin block of the target's window;
* plenty of pure-compute numpy work stays un-instrumented, mirroring
  what the LLVM alias analysis filters out for RMA-Analyzer — but the
  MUST-RMA model still pays for every instrumented access it sees.

``inject_put_race=True`` duplicates the ``MPI_Put`` exactly like the
paper's Fig. 9a experiment (two RMA_WRITEs to the same target range,
reported with the ``./dspl.hpp:612/614`` debug locations of Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from ..intervals import DebugInfo
from ..mpi import GRAPH_TYPE, INT64, RankContext
from .graphgen import Graph, block_range, generate_graph, owner_of

__all__ = ["MiniViteConfig", "MiniViteResult", "CommPlan", "make_comm_plan",
           "minivite_program", "default_graph"]

_SRC = "./dspl.hpp"
_VDATA_FIELDS = 3  # community, degree, flag -> 24-byte struct


@dataclass(frozen=True)
class MiniViteConfig:
    """Workload knobs (defaults are laptop-scale; the paper used 640k/1.28M)."""

    nvertices: int = 4096
    avg_degree: float = 8.0
    locality: float = 0.9
    sweeps: int = 1  # the "single phase" = one sweep by default
    seed: int = 12345
    inject_put_race: bool = False
    #: instrumented bookkeeping accesses per vertex on non-RMA memory —
    #: dropped by the alias filter, fully processed by MUST-RMA
    bookkeeping_accesses: int = 6


@dataclass
class MiniViteResult:
    """Cross-rank outputs (filled in by the rank programs)."""

    communities_before: int = 0
    communities_after: int = 0
    modularity: float = 0.0


class CommPlan:
    """Who sends which vertices to whom, and the window layout.

    ``send[o][t]`` — vertex ids owned by ``o`` whose updates rank ``t``
    needs (because ``t`` owns a neighbor).  The target's window is the
    concatenation of per-origin blocks: ``disp[t][o]`` is the element
    offset of ``o``'s block, ``win_elems[t]`` the total element count.
    """

    def __init__(self, graph: Graph, nranks: int) -> None:
        self.nranks = nranks
        sets: Dict[int, Dict[int, set]] = {
            o: {} for o in range(nranks)
        }
        n = graph.nvertices
        for u in range(n):
            ou = owner_of(n, nranks, u)
            for v in graph.neighbors(u):
                ov = owner_of(n, nranks, int(v))
                if ov != ou:
                    sets[ou].setdefault(ov, set()).add(u)
        self.send: Dict[int, Dict[int, np.ndarray]] = {}
        for o in range(nranks):
            self.send[o] = {
                t: np.array(sorted(vs), dtype=np.int64)
                for t, vs in sorted(sets[o].items())
            }
        self.disp: Dict[int, Dict[int, int]] = {t: {} for t in range(nranks)}
        self.win_elems: List[int] = [0] * nranks
        for t in range(nranks):
            off = 0
            for o in range(nranks):
                block = self.send.get(o, {}).get(t)
                if block is None or not len(block):
                    continue
                self.disp[t][o] = off
                off += len(block)
            self.win_elems[t] = max(off, 1)


def default_graph(config: MiniViteConfig) -> Graph:
    return generate_graph(
        config.nvertices, config.avg_degree, config.locality, config.seed
    )


def make_comm_plan(graph: Graph, nranks: int) -> CommPlan:
    return CommPlan(graph, nranks)


def minivite_program(
    ctx: RankContext,
    graph: Graph,
    plan: CommPlan,
    config: MiniViteConfig,
    result: Optional[MiniViteResult] = None,
) -> Generator:
    """The per-rank MiniVite phase (run with ``World.run``)."""
    n = graph.nvertices
    begin, end = block_range(n, ctx.size, ctx.rank)
    nlocal = end - begin

    # global community mirror (simulation convenience: values only, the
    # authoritative exchange still goes through the window)
    community = np.arange(n, dtype=np.int64)

    win = yield ctx.win_allocate(
        "commwin", plan.win_elems[ctx.rank], GRAPH_TYPE
    )

    # per-vertex attribute structs: [community, degree, flag] x nlocal
    vdata = ctx.alloc("vdata", max(_VDATA_FIELDS * nlocal, 1), INT64,
                      rma_hint=True)
    vnp = vdata.np
    if nlocal:
        vnp[0::3] = community[begin:end]
        vnp[1::3] = graph.xadj[begin + 1 : end + 1] - graph.xadj[begin:end]

    # pure bookkeeping (visit counters, per-vertex scratch): never aliases
    # RMA memory, so the alias filter drops these accesses -- MUST-RMA
    # instruments them anyway (its Fig. 10 over-instrumentation)
    scratch = ctx.alloc("scratch", max(2 * nlocal, 1), INT64)

    my_sends = plan.send.get(ctx.rank, {})
    total_out = int(sum(len(v) for v in my_sends.values()))
    sendbuf = ctx.alloc("scdata", max(2 * total_out, 2), INT64, rma_hint=True)
    send_view = sendbuf.np

    dbg_scratch_r = DebugInfo(_SRC, 389)
    dbg_scratch_w = DebugInfo(_SRC, 390)
    dbg_load_comm = DebugInfo(_SRC, 402)
    dbg_load_deg = DebugInfo(_SRC, 403)
    dbg_store_comm = DebugInfo(_SRC, 431)
    dbg_put = DebugInfo(_SRC, 612)
    dbg_put_dup = DebugInfo(_SRC, 614)

    for _sweep in range(config.sweeps):
        ctx.win_lock_all(win)
        yield ctx.barrier()  # all epochs open before remote traffic

        # ---- local sweep: one Louvain-style move per owned vertex ----
        for i in range(nlocal):
            v = begin + i
            for b in range(config.bookkeeping_accesses // 2):
                ctx.load(scratch, 2 * i, 1, debug=dbg_scratch_r)
                ctx.store(scratch, 2 * i + 1, i, 1, debug=dbg_scratch_w)
            comm_v = int(ctx.load(vdata, 3 * i, 1, debug=dbg_load_comm))
            deg = int(ctx.load(vdata, 3 * i + 1, 1, debug=dbg_load_deg))
            neigh = graph.neighbors(v)
            ctx.compute(max(deg, 1))
            if len(neigh):
                ncomms = community[neigh]
                # pick the most frequent neighbouring community (a
                # label-propagation step standing in for the full
                # modularity-gain argmax)
                vals, counts = np.unique(ncomms, return_counts=True)
                best = int(vals[np.argmax(counts)])
                if best != comm_v:
                    # MiniVite stores the move target in a separate array
                    # (cvect): a third attribute, 16 bytes away -> the
                    # stored intervals stay pairwise disjoint
                    ctx.store(vdata, 3 * i + 2, best, 1, debug=dbg_store_comm)
                    community[v] = best

        # ---- pack and ship boundary updates (Fig. 9a) ----
        off = 0
        for t, verts in my_sends.items():
            nent = len(verts)
            # packing uses bulk copies (std::vector assignment / memcpy),
            # which the LLVM pass does not instrument as plain Load/Store
            send_view[2 * off : 2 * (off + nent) : 2] = verts
            send_view[2 * off + 1 : 2 * (off + nent) + 1 : 2] = community[verts]
            # one Put per communication partner, element type MPI_GRAPH_TYPE
            pairbuf = _as_graphtype(sendbuf)
            ctx.put(win, t, plan.disp[t][ctx.rank], pairbuf, off, nent,
                    debug=dbg_put)
            if config.inject_put_race:
                ctx.put(win, t, plan.disp[t][ctx.rank], pairbuf, off, nent,
                        debug=dbg_put_dup)
            off += nent

        # the tool's epoch-end protocol waits for all pending remote
        # accesses (the paper's MPI_Reduce + wait); a barrier before the
        # unlock models that every notification has been delivered
        yield ctx.barrier()
        ctx.win_unlock_all(win)

        # ---- apply incoming ghost updates (epoch is over: completed) ----
        mem = win.memory(ctx.rank).view(np.int64)
        incoming = plan.win_elems[ctx.rank]
        for e in range(incoming):
            vid = int(mem[2 * e])
            if 0 < vid < n or (vid == 0 and mem[2 * e + 1] != 0):
                community[vid] = mem[2 * e + 1]

    # ---- wrap-up statistics ----
    ncomm_local = len(np.unique(community[begin:end])) if nlocal else 0
    total = yield ctx.allreduce(float(ncomm_local), "sum")
    modularity = _local_modularity(graph, community, begin, end)
    global_mod = yield ctx.allreduce(modularity, "sum")
    if result is not None and ctx.rank == 0:
        result.communities_before = n
        result.communities_after = int(total)
        result.modularity = global_mod
    yield ctx.win_free(win)


def _as_graphtype(buf):
    """Reinterpret the int64 send buffer as MPI_GRAPH_TYPE pairs."""
    from ..mpi.simulator import Buffer

    return Buffer(buf.region, GRAPH_TYPE)


def _local_modularity(
    graph: Graph, community: np.ndarray, begin: int, end: int
) -> float:
    """This rank's share of Newman modularity (unnormalized across ranks)."""
    if end <= begin or graph.nedges == 0:
        return 0.0
    m2 = float(2 * graph.nedges)
    intra = 0
    for v in range(begin, end):
        neigh = graph.neighbors(v)
        if len(neigh):
            intra += int(np.count_nonzero(community[neigh] == community[v]))
    deg = (graph.xadj[begin + 1 : end + 1] - graph.xadj[begin:end]).astype(float)
    # sum over local vertices of (k_v/2m)^2 approximates the null model term
    return intra / m2 - float(np.sum((deg / m2) ** 2))

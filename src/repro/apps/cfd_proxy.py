"""CFD-Proxy-like application: iterated halo exchange over two windows.

CFD-Proxy (Simmendinger, PGAS community benchmarks) is the paper's
"friendly" workload for the merging algorithm (Fig. 10): passive-target
epochs, **two windows per process with one epoch each**, and — the
decisive property — "the window allocated by a process is actually
divided into the number of processes so all the other processes have a
dedicated space in the window": every origin's puts land in its own
contiguous block, so the new insertion algorithm merges them to a
handful of nodes (the paper: 90,004 -> 54, a 99.94% reduction).

The reproduction keeps that structure:

* each rank runs ``iterations`` rounds of: put halo chunks into each
  neighbour's dedicated window block (several contiguous puts from the
  same source line — they merge), ``MPI_Win_flush_all``, ``MPI_Barrier``
  (the §6-recommended sync), instrumented halo reads, compute, and a
  closing barrier;
* both epochs span all iterations (lock_all once, unlock_all at the
  end), so the *original* RMA-Analyzer accumulates every access of
  every iteration — the linear BST growth of Fig. 10 — and, because it
  ignores flush/barrier, reports the cross-iteration false positive the
  paper describes in §6.  MUST-RMA likewise.  Our detector's precise
  flush generations + barrier pruning keep the run clean and the BST
  flat;
* per-iteration numerical work (a Jacobi-style smoothing step) runs on
  un-instrumented numpy arrays plus a few instrumented scratch accesses
  that only MUST-RMA pays for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from ..intervals import DebugInfo
from ..mpi import FLOAT64, RankContext
from .meshgen import MeshPartition, make_partitions

__all__ = ["CfdConfig", "CfdResult", "cfd_program", "default_partitions"]

_SRC = "./exchange.c"


@dataclass(frozen=True)
class CfdConfig:
    """Workload knobs (paper: 1 node, 12 ranks, 50 iterations)."""

    cells_per_rank: int = 512
    iterations: int = 50
    halo_width: int = 1
    halo_fraction: float = 0.05
    #: how many contiguous puts carry one halo block (per-face-group
    #: sends in the real code); they all merge into one node
    chunks_per_neighbor: int = 6
    #: instrumented halo reads per neighbour per iteration
    halo_reads: int = 2
    #: instrumented accesses per iteration on pure-compute memory: the
    #: gradient/flux kernels' loads and stores.  The alias filter drops
    #: them for the BST tools; ThreadSanitizer instruments them all —
    #: the dominant share of MUST-RMA's Fig. 10 overhead.
    bookkeeping_accesses: int = 240


@dataclass
class CfdResult:
    """Numerical output (sanity check that the solver really ran)."""

    residual: float = 0.0
    iterations_done: int = 0


def default_partitions(nranks: int, config: CfdConfig) -> List[MeshPartition]:
    return make_partitions(
        nranks, config.cells_per_rank, config.halo_width, config.halo_fraction
    )


def _window_layout(
    parts: List[MeshPartition], me: int
) -> Dict[int, int]:
    """Element offset of each origin's dedicated block in my window."""
    disp: Dict[int, int] = {}
    off = 0
    for nb in parts[me].neighbors:
        disp[nb] = off
        off += parts[me].halo[nb]
    return disp


def _window_elems(parts: List[MeshPartition], me: int) -> int:
    return max(parts[me].halo_cells_total, 1)


def cfd_program(
    ctx: RankContext,
    parts: List[MeshPartition],
    config: CfdConfig,
    result: Optional[CfdResult] = None,
) -> Generator:
    """The per-rank CFD-Proxy kernel (run with ``World.run``)."""
    me = ctx.rank
    part = parts[me]
    disp_in = _window_layout(parts, me)
    nelems = _window_elems(parts, me)

    # two windows, e.g. gradients and fluxes — one epoch each (paper §5.3)
    grad_win = yield ctx.win_allocate("grad_win", nelems, FLOAT64)
    flux_win = yield ctx.win_allocate("flux_win", nelems, FLOAT64)

    # field data + scratch: plain compute memory
    field = np.linspace(0.0, 1.0, max(part.ncells, 2)) * (me + 1)
    sendbufs = {
        win.name: ctx.alloc(f"halo_out_{win.name}",
                            max(part.halo_cells_total, 1), FLOAT64,
                            rma_hint=True)
        for win in (grad_win, flux_win)
    }
    scratch = ctx.alloc("scratch", 64, FLOAT64)

    dbg_put = {grad_win.name: DebugInfo(_SRC, 118), flux_win.name: DebugInfo(_SRC, 131)}
    dbg_read = {grad_win.name: DebugInfo(_SRC, 152), flux_win.name: DebugInfo(_SRC, 164)}
    dbg_scratch = DebugInfo(_SRC, 86)

    ctx.win_lock_all(grad_win)
    ctx.win_lock_all(flux_win)
    yield ctx.barrier()  # all epochs open

    residual = 0.0
    for _it in range(config.iterations):
        for win in (grad_win, flux_win):
            sendbuf = sendbufs[win.name]
            # pack boundary values (bulk copy — not instrumented)
            out = sendbuf.np
            out[:] = field[: len(out)]

            # ship each neighbour's halo block in contiguous chunks; every
            # chunk comes from the same source line, so the improved
            # insertion merges them into one node per block
            off = 0
            for nb in part.neighbors:
                count = parts[nb].halo[me]  # my block in nb's window
                base = _window_layout(parts, nb)[me]
                chunks = min(config.chunks_per_neighbor, count)
                step = count // chunks
                sent = 0
                for c in range(chunks):
                    n = step if c < chunks - 1 else count - sent
                    if n <= 0:
                        continue
                    ctx.put(win, nb, base + sent, sendbuf,
                            off + sent if off + sent < sendbuf.nelems else 0,
                            n, debug=dbg_put[win.name])
                    sent += n
                off += part.halo[nb]

            ctx.win_flush_all(win)

        yield ctx.barrier()  # flush_all + barrier: the §6-recommended sync

        # consume the halos (instrumented reads on my own window blocks)
        for win in (grad_win, flux_win):
            winbuf = _window_buffer(ctx, win)
            for nb in part.neighbors:
                base = disp_in[nb]
                count = part.halo[nb]
                reads = min(config.halo_reads, count)
                for rdx in range(reads):
                    ctx.load(winbuf, base + (rdx * count) // max(reads, 1), 1,
                             debug=dbg_read[win.name])

        # numerical work: Jacobi-ish smoothing with the halo means
        halo_mean = float(np.mean(grad_win.memory(me))) if nelems else 0.0
        prev = field.copy()
        field[1:-1] = 0.5 * field[1:-1] + 0.25 * (field[:-2] + field[2:])
        field[0] = 0.5 * (field[0] + halo_mean)
        field[-1] = 0.5 * (field[-1] + halo_mean)
        # only the boundary update happens inside the epoch; the paper's
        # Fig. 10 metric is time spent *in the epochs*, so the bulk of the
        # flux computation is not charged here
        ctx.compute(part.halo_cells_total)
        for b in range(config.bookkeeping_accesses // 2):
            ctx.load(scratch, b % 64, 1, debug=dbg_scratch)
            ctx.store(scratch, (b + 1) % 64, float(b), 1, debug=dbg_scratch)
        # convergence metric: how much the field moved this iteration
        residual = float(np.sum(np.abs(field - prev)))

        yield ctx.barrier()  # iteration boundary: reads precede next puts

    ctx.win_unlock_all(grad_win)
    ctx.win_unlock_all(flux_win)
    total_res = yield ctx.allreduce(residual, "sum")
    if result is not None and ctx.rank == 0:
        result.residual = total_res
        result.iterations_done = config.iterations
    yield ctx.win_free(grad_win)
    yield ctx.win_free(flux_win)


def _window_buffer(ctx: RankContext, win):
    from ..mpi.simulator import Buffer

    return Buffer(win.region_of(ctx.rank), FLOAT64)

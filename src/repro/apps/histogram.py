"""Distributed histogram — the classic MPI_Accumulate workload.

A third application domain next to MiniVite (graphs) and CFD-Proxy
(meshes): every rank classifies a local sample stream into bins owned
round-robin by all ranks and updates the remote bins in place.  This is
the textbook use of ``MPI_Accumulate`` — the §2.1 atomicity property is
exactly what makes the concurrent updates correct.

The module ships both variants:

* ``use_accumulate=True`` (correct): concurrent same-op accumulates,
  race-free by atomicity;
* ``use_accumulate=False`` (buggy): the read-modify-write done "by hand"
  with ``MPI_Get`` + local add + ``MPI_Put`` — the classic lost-update
  race every detector should flag.

A third mode (``use_locks=True``) fixes the manual variant with
exclusive ``MPI_Win_lock`` epochs around each read-modify-write, which
detectors with per-target-lock support recognize as race-free; a fourth
(``use_fetch_op=True``) uses ``MPI_Fetch_and_op`` — the one-call atomic
read-modify-write, race-free like the accumulate variant and the only
one that also hands back the old value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..intervals import DebugInfo
from ..mpi import INT64, RankContext

__all__ = ["HistogramConfig", "HistogramResult", "histogram_program"]

_SRC = "./histogram.c"


@dataclass(frozen=True)
class HistogramConfig:
    """Workload knobs."""

    nbins: int = 64
    samples_per_rank: int = 256
    seed: int = 99
    use_accumulate: bool = True
    use_locks: bool = False  # exclusive-lock fix for the manual variant
    use_fetch_op: bool = False  # MPI_Fetch_and_op variant
    batch: int = 8  # samples handled per epoch round


@dataclass
class HistogramResult:
    total_counted: int = 0
    max_bin: int = 0


def histogram_program(
    ctx: RankContext,
    config: HistogramConfig,
    result: Optional[HistogramResult] = None,
) -> Generator:
    """Per-rank histogram kernel.  Bins are distributed round-robin."""
    bins_local = (config.nbins + ctx.size - 1) // ctx.size
    win = yield ctx.win_allocate("bins", max(bins_local, 1), INT64)

    rng = np.random.default_rng(config.seed + ctx.rank)
    samples = rng.integers(0, config.nbins, config.samples_per_rank)

    one = ctx.alloc("one", 1, INT64, rma_hint=True)
    one.np[0] = 1
    tmp = ctx.alloc("tmp", 1, INT64, rma_hint=True)

    dbg_acc = DebugInfo(_SRC, 41)
    dbg_faa = DebugInfo(_SRC, 44)
    dbg_get = DebugInfo(_SRC, 47)
    dbg_put = DebugInfo(_SRC, 49)

    if not config.use_locks:
        ctx.win_lock_all(win)
        yield ctx.barrier()

    done = 0
    while done < len(samples):
        batch = samples[done : done + config.batch]
        done += len(batch)
        for value in batch:
            owner = int(value) % ctx.size
            disp = int(value) // ctx.size
            if config.use_fetch_op:
                ctx.fetch_and_op(win, owner, disp, one, tmp, debug=dbg_faa)
            elif config.use_accumulate:
                ctx.accumulate(win, owner, disp, one, 0, 1, op="sum",
                               debug=dbg_acc)
            elif config.use_locks:
                # manual read-modify-write, made safe by mutual exclusion
                ctx.win_lock(win, owner, exclusive=True)
                ctx.get(win, owner, disp, tmp, 0, 1, debug=dbg_get)
                ctx.win_flush_all(win)
                tmp.np[0] += 1
                ctx.put(win, owner, disp, tmp, 0, 1, debug=dbg_put)
                ctx.win_unlock(win, owner)
            else:
                # BUGGY: unsynchronized read-modify-write (lost updates)
                ctx.get(win, owner, disp, tmp, 0, 1, debug=dbg_get)
                tmp.np[0] += 1
                ctx.put(win, owner, disp, tmp, 0, 1, debug=dbg_put)
        yield  # let the other ranks' batches interleave

    if not config.use_locks:
        ctx.win_flush_all(win)
        yield ctx.barrier()
        ctx.win_unlock_all(win)
    yield ctx.barrier()

    local_total = int(np.sum(win.memory(ctx.rank)[:bins_local]))
    local_max = int(np.max(win.memory(ctx.rank)[:bins_local], initial=0))
    total = yield ctx.allreduce(float(local_total), "sum")
    peak = yield ctx.allreduce(float(local_max), "max")
    if result is not None and ctx.rank == 0:
        result.total_counted = int(total)
        result.max_bin = int(peak)
    yield ctx.win_free(win)

"""Shared runner for the application-scale experiments.

Runs one application under one detector configuration and collects the
quantities the paper's evaluation reports:

* wall-clock time of the whole simulation and of the detector alone
  (the "overhead of the analysis at runtime"),
* the simulated cluster time from the cost model (compute + comm +
  sync + analysis, per rank; the makespan is Fig. 11/12's "execution
  time"),
* detector node statistics (Table 4, the Fig. 10 narrative),
* race reports (expected clean for the shipped apps unless a race is
  injected).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from .. import obs
from ..mpi import CostParams, World
from ..mpi.interposition import DetectorProtocol

__all__ = ["AppRun", "run_app", "DETECTOR_FACTORIES", "detector_factory"]


@dataclass
class AppRun:
    """Everything measured in one (app, detector, params) execution."""

    app: str
    detector: str
    nranks: int
    wall_seconds: float
    analysis_seconds: float
    sim_elapsed_ms: float
    sim_breakdown: Dict[str, float]
    races: int
    total_max_nodes: int
    max_nodes_one_rank: int
    accesses_processed: int
    accesses_filtered: int
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.app}/{self.detector}@{self.nranks}"


def run_app(
    app: str,
    program: Callable,
    nranks: int,
    detector: Optional[DetectorProtocol],
    *args: Any,
    cost_params: Optional[CostParams] = None,
    **kwargs: Any,
) -> AppRun:
    """Run ``program`` on ``nranks`` simulated ranks under ``detector``."""
    detectors = [detector] if detector is not None else []
    world = World(nranks, detectors, cost_params=cost_params)
    extra: Dict[str, Any] = {}
    with obs.scope() as reg:
        t0 = time.perf_counter()
        world.run(program, *args, **kwargs)
        wall = time.perf_counter() - t0

        name = detector.name if detector is not None else "Baseline"
        races = getattr(detector, "reports_total", 0) if detector else 0
        if detector is not None and reg.enabled:
            # the registry is the single source of truth for the node
            # counts: publish the detector's final statistics, then read
            # them back out of the same snapshot the CLI metrics print
            detector.publish_obs()
            snap = reg.snapshot()
            counters = snap["counters"]
            gauges = snap["gauges"]

            def _c(metric: str) -> int:
                return counters.get(
                    obs.metric_key(metric, {"tool": name}), 0)

            total_max = _c("bst.nodes_peak")
            # read the gauge's peak: values sum across merged worker
            # registries, peaks max — and "one rank" is a max by nature
            max_one = gauges.get(
                obs.metric_key("bst.nodes_peak_one_rank", {"tool": name}),
                {"peak": 0})["peak"]
            processed = _c("detector.processed")
            filtered = _c("detector.filtered")
            extra["obs"] = snap
        elif detector is not None:  # REPRO_OBS=off: ask the detector
            stats = detector.node_stats()
            total_max = stats.total_max_nodes
            max_one = stats.max_nodes_one_rank
            processed = stats.accesses_processed
            filtered = stats.accesses_filtered
        else:
            total_max = max_one = processed = filtered = 0

    analysis = world.interposition.analysis_wall.get(name, 0.0)
    breakdown = {
        cat: world.clock.total(cat) / 1e6
        for cat in ("compute", "comm", "sync", "analysis")
    }
    return AppRun(
        app=app,
        detector=name,
        nranks=nranks,
        wall_seconds=wall,
        analysis_seconds=analysis,
        sim_elapsed_ms=world.clock.elapsed_ms(),
        sim_breakdown=breakdown,
        races=races,
        total_max_nodes=total_max,
        max_nodes_one_rank=max_one,
        accesses_processed=processed,
        accesses_filtered=filtered,
        extra=extra,
    )


def detector_factory(name: str) -> Callable[[], Optional[DetectorProtocol]]:
    """Factory by paper name; 'Baseline' yields no detector at all."""
    if name not in DETECTOR_FACTORIES:
        raise KeyError(f"unknown detector {name!r}; have {sorted(DETECTOR_FACTORIES)}")
    return DETECTOR_FACTORIES[name]


def _baseline() -> None:
    return None


def _legacy():
    from ..detectors import RmaAnalyzerLegacy

    return RmaAnalyzerLegacy()


def _must():
    from ..detectors import MustRma

    return MustRma()


def _ours():
    from ..core import OurDetector

    return OurDetector()


#: the four bars of the paper's Fig. 10, by display name
DETECTOR_FACTORIES: Dict[str, Callable[[], Optional[DetectorProtocol]]] = {
    "Baseline": _baseline,
    "RMA-Analyzer": _legacy,
    "MUST-RMA": _must,
    "Our Contribution": _ours,
}

"""The paper's two "real-life" evaluation applications, simulated.

* :mod:`repro.apps.minivite` — single-phase distributed Louvain (the
  non-adjacent-access workload of Figs 11/12 and Table 4),
* :mod:`repro.apps.cfd_proxy` — iterated halo exchange over two windows
  (the merging-friendly workload of Fig. 10),
* :mod:`repro.apps.graphgen` / :mod:`repro.apps.meshgen` — synthetic
  inputs,
* :mod:`repro.apps.harness` — the shared measurement runner.
"""

from .cfd_proxy import CfdConfig, CfdResult, cfd_program, default_partitions
from .graphgen import Graph, block_range, generate_graph, owner_of
from .harness import DETECTOR_FACTORIES, AppRun, detector_factory, run_app
from .histogram import HistogramConfig, HistogramResult, histogram_program
from .meshgen import MeshPartition, make_partitions
from .minivite import (
    CommPlan,
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)

__all__ = [
    "AppRun",
    "CfdConfig",
    "CfdResult",
    "CommPlan",
    "DETECTOR_FACTORIES",
    "Graph",
    "HistogramConfig",
    "HistogramResult",
    "MeshPartition",
    "MiniViteConfig",
    "MiniViteResult",
    "block_range",
    "cfd_program",
    "default_graph",
    "default_partitions",
    "detector_factory",
    "generate_graph",
    "histogram_program",
    "make_comm_plan",
    "make_partitions",
    "minivite_program",
    "owner_of",
    "run_app",
]

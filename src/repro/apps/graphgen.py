"""Synthetic graph generation for the MiniVite-like workload.

MiniVite's evaluation inputs are random geometric / RGG-style graphs
with hundreds of thousands of vertices.  We generate a partitioned
random graph with *locality*: most edges connect vertices with nearby
ids, a tunable fraction are long-range.  Locality matters for the
reproduction because it controls how much cross-rank (ghost) traffic
the Louvain phase generates — exactly the knob that shapes the paper's
Table 4 merge rates and the Fig. 11/12 communication/computation
balance.

The graph is stored as a CSR-like structure in numpy arrays and
distributed by contiguous vertex blocks (MiniVite's distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Graph", "generate_graph", "block_range", "owner_of"]


@dataclass
class Graph:
    """Undirected graph in CSR form (each edge appears in both rows)."""

    nvertices: int
    xadj: np.ndarray  # int64 [nvertices + 1]
    adjncy: np.ndarray  # int64 [2 * nedges]

    @property
    def nedges(self) -> int:
        return len(self.adjncy) // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])


def generate_graph(
    nvertices: int,
    avg_degree: float = 8.0,
    locality: float = 0.9,
    seed: int = 12345,
) -> Graph:
    """A random graph where ``locality`` of the edges are short-range.

    Short-range edges connect ``v`` to a vertex within ``+/- 64`` ids;
    the rest are uniform.  Self-loops and duplicates are dropped.
    """
    if nvertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    nedges = int(nvertices * avg_degree / 2)

    src = rng.integers(0, nvertices, nedges, dtype=np.int64)
    local_mask = rng.random(nedges) < locality
    span = rng.integers(1, 65, nedges, dtype=np.int64)
    sign = rng.choice(np.array([-1, 1], dtype=np.int64), nedges)
    dst_local = (src + sign * span) % nvertices
    dst_far = rng.integers(0, nvertices, nedges, dtype=np.int64)
    dst = np.where(local_mask, dst_local, dst_far)

    keep = src != dst
    src, dst = src[keep], dst[keep]
    # symmetrize and deduplicate
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    pairs = np.unique(lo * np.int64(nvertices) + hi)
    lo = pairs // nvertices
    hi = pairs % nvertices

    all_src = np.concatenate([lo, hi])
    all_dst = np.concatenate([hi, lo])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]

    xadj = np.zeros(nvertices + 1, dtype=np.int64)
    np.add.at(xadj, all_src + 1, 1)
    np.cumsum(xadj, out=xadj)
    return Graph(nvertices, xadj, all_dst.astype(np.int64))


def block_range(nvertices: int, nranks: int, rank: int) -> Tuple[int, int]:
    """Contiguous vertex block [begin, end) owned by ``rank``."""
    base = nvertices // nranks
    extra = nvertices % nranks
    begin = rank * base + min(rank, extra)
    end = begin + base + (1 if rank < extra else 0)
    return begin, end


def owner_of(nvertices: int, nranks: int, v: int) -> int:
    """Rank owning vertex ``v`` under the block distribution."""
    base = nvertices // nranks
    extra = nvertices % nranks
    cut = extra * (base + 1)
    if v < cut:
        return v // (base + 1)
    return extra + (v - cut) // base if base else nranks - 1

"""Balanced interval BSTs (the storage substrate of RMA-Analyzer).

* :class:`AVLTree` — generic from-scratch AVL multiset with augmentation,
* :class:`IntervalBST` — accesses keyed by interval lower bound with a
  correct O(log n + k) overlap query,
* :func:`legacy_find_overlapping` — the original unsound path-limited
  search (paper §4.1) used by the baseline detector,
* :class:`FlatIntervalStore` — the struct-of-arrays AVL interval store
  backing the flat detector core (:mod:`repro.core.flatcore`).
"""

from .avl import AVLNode, AVLTree, TreeStats
from .dump import dump_bst, dump_detector_stores
from .flat import FLAT_LAYOUT, FlatIntervalStore
from .interval_tree import IntervalBST
from .legacy_search import legacy_find_overlapping

__all__ = [
    "AVLNode",
    "AVLTree",
    "FLAT_LAYOUT",
    "FlatIntervalStore",
    "IntervalBST",
    "TreeStats",
    "dump_bst",
    "dump_detector_stores",
    "legacy_find_overlapping",
]

"""The original RMA-Analyzer's lower-bound-only intersection search.

The paper (§4.1) attributes RMA-Analyzer's false negatives to "the
approximation made by only considering the lower bound of the interval
of addresses when comparing two accesses": the stored intervals are
treated as *point keys* during the search, so the descent follows a
single root-to-leaf path picked by the new access's lower bound and only
the nodes *on that path* are tested for intersection.  Any intersecting
node hanging off the path is missed.

Worked example (paper Fig. 5a / Code 1)::

    insert Load(4)        ->  root ([4], Local_Read)
    insert Put covering [2...12] -> 2 < 4, goes to the LEFT subtree
    query  Store(7)       ->  7 > 4, descends RIGHT: never visits
                              ([2...12], RMA_Read) -> race missed

The corrected query (interval augmentation) lives on
:class:`repro.bst.interval_tree.IntervalBST`; this module re-creates the
buggy behaviour *on the same tree type* so the baseline detector and the
ablation benchmarks can flip between the two searches.
"""

from __future__ import annotations

from typing import List, Optional

from ..intervals import Interval, MemoryAccess
from .avl import AVLNode
from .interval_tree import IntervalBST

__all__ = ["legacy_find_overlapping"]


def legacy_find_overlapping(
    bst: IntervalBST, interval: Interval
) -> List[MemoryAccess]:
    """Path-limited intersection search (the original, unsound one).

    Walks the single BST path that an ordinary point lookup of
    ``interval.lo`` would take, collecting the accesses along the path
    that happen to intersect ``interval``.  Sound only when all stored
    intervals are disjoint — which the original RMA-Analyzer never
    guaranteed.
    """
    out: List[MemoryAccess] = []
    node: Optional[AVLNode[MemoryAccess]] = bst.root
    while node is not None:
        bst.stats.comparisons += 1
        if node.value.interval.overlaps(interval):
            out.append(node.value)
        if interval.lo < node.key:
            node = node.left
        elif interval.lo > node.key:
            node = node.right
        else:
            # equal lower bounds: duplicates were inserted to the right
            node = node.right
    return out

"""Flat struct-of-arrays interval store — the detector core's hot path.

Same data structure as :class:`repro.bst.interval_tree.IntervalBST`
(an AVL tree keyed by interval lower bound, augmented with the max
upper bound per subtree), but nodes are *rows across parallel list
columns* addressed by small ints instead of linked ``AVLNode`` objects:

======== =====================================================
column   meaning
======== =====================================================
_key     interval lower bound (the BST key)
_hi      interval upper bound
_left    left child index (-1 = none)
_right   right child index (-1 = none)
_height  AVL height (leaves are 1)
_aug     max interval upper bound in the subtree
_rec     the interned access record tuple (see
         :mod:`repro.intervals.intern`), ``None`` on free slots
======== =====================================================

Freed slots go on a free list and are reused LIFO, so a store's column
length tracks its high-water node count, not its insert count.

Every operation counts into the same :class:`~repro.bst.avl.TreeStats`
with the *same accounting* as the object tree — descent comparisons,
rotations, query ``visited`` counts, fan-out buckets — because those
counters are published as ``bst.*`` metrics and captured inside race
forensics bundles: the flat core must keep them byte-identical to the
object core (the differential harness in ``tests/`` pins this).

The detector invariant (stored accesses pairwise disjoint, §4.1) makes
keys unique here; the object tree's tie-break counter — whose fresh tie
is always the maximum, sending equal keys right — therefore has no
observable effect and is not materialized.  Removal still mirrors the
object tree's equal-key two-sided search so the comparison counts stay
identical even on (impossible-by-invariant) duplicate keys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..intervals.access import DebugInfo
from ..intervals.intern import ACCUMS, SITES, Rec
from .avl import FANOUT_NBUCKETS, TreeStats

__all__ = ["FLAT_LAYOUT", "FlatIntervalStore"]

#: checkpoint layout tag of one serialized store (inside ``repro-ckpt-v1``)
FLAT_LAYOUT = "repro-flat-bst-v1"


class FlatIntervalStore:
    """Disjoint-interval store over flat columns, API-compatible with
    :class:`~repro.bst.interval_tree.IntervalBST` where the detectors
    need it (``len``, ``stats``, ``clear``, iteration, checkpointing) —
    but trafficking in interned record tuples, not ``MemoryAccess``."""

    __slots__ = ("_key", "_hi", "_left", "_right", "_height", "_aug",
                 "_rec", "_free", "root", "_size", "_balanced", "stats")

    def __init__(self, *, balanced: bool = True) -> None:
        self._key: List[int] = []
        self._hi: List[int] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._height: List[int] = []
        self._aug: List[int] = []
        self._rec: List[Optional[Rec]] = []
        self._free: List[int] = []
        self.root = -1
        self._size = 0
        self._balanced = balanced
        self.stats = TreeStats()

    # -- size / iteration ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Rec]:
        """In-order traversal of records (ascending key)."""
        left = self._left
        right = self._right
        recs = self._rec
        stack: List[int] = []
        i = self.root
        while stack or i >= 0:
            while i >= 0:
                stack.append(i)
                i = left[i]
            i = stack.pop()
            yield recs[i]  # type: ignore[misc]
            i = right[i]

    def height(self) -> int:
        return self._height[self.root] if self.root >= 0 else 0

    def clear(self) -> None:
        """Drop all rows; stats survive (same contract as the object tree)."""
        self._key.clear()
        self._hi.clear()
        self._left.clear()
        self._right.clear()
        self._height.clear()
        self._aug.clear()
        self._rec.clear()
        self._free.clear()
        self.root = -1
        self._size = 0

    def snapshot(self) -> List[Rec]:
        """In-order copy of the stored records (tests, reports)."""
        return list(self)

    # -- maintenance -----------------------------------------------------------

    def _refresh(self, i: int) -> None:
        left = self._left
        right = self._right
        height = self._height
        l = left[i]
        r = right[i]
        lh = height[l] if l >= 0 else 0
        rh = height[r] if r >= 0 else 0
        height[i] = (lh if lh > rh else rh) + 1
        aug = self._aug
        a = self._hi[i]
        if l >= 0 and aug[l] > a:
            a = aug[l]
        if r >= 0 and aug[r] > a:
            a = aug[r]
        aug[i] = a

    def _rotate_right(self, y: int) -> int:
        left = self._left
        x = left[y]
        left[y] = self._right[x]
        self._right[x] = y
        self._refresh(y)
        self._refresh(x)
        self.stats.rotations += 1
        return x

    def _rotate_left(self, x: int) -> int:
        right = self._right
        y = right[x]
        right[x] = self._left[y]
        self._left[y] = x
        self._refresh(x)
        self._refresh(y)
        self.stats.rotations += 1
        return y

    def _rebalance(self, i: int) -> int:
        left = self._left
        right = self._right
        height = self._height
        l = left[i]
        r = right[i]
        lh = height[l] if l >= 0 else 0
        rh = height[r] if r >= 0 else 0
        height[i] = (lh if lh > rh else rh) + 1
        aug = self._aug
        a = self._hi[i]
        if l >= 0 and aug[l] > a:
            a = aug[l]
        if r >= 0 and aug[r] > a:
            a = aug[r]
        aug[i] = a
        if not self._balanced:
            return i
        balance = lh - rh
        if balance > 1:
            ll = left[l]
            lr = right[l]
            if (height[ll] if ll >= 0 else 0) < (
                    height[lr] if lr >= 0 else 0):
                left[i] = self._rotate_left(l)
            return self._rotate_right(i)
        if balance < -1:
            rr = right[r]
            rl = left[r]
            if (height[rr] if rr >= 0 else 0) < (
                    height[rl] if rl >= 0 else 0):
                right[i] = self._rotate_right(r)
            return self._rotate_left(i)
        return i

    # -- mutation --------------------------------------------------------------

    def insert(self, rec: Rec) -> None:
        """Insert one record (iterative descent + bottom-up rebalance).

        Counting parity with the object tree: one comparison per
        existing node on the descent path; a fresh node's tie-break is
        always the maximum there, so equal keys descend right and the
        comparison outcome depends on the key alone.  Alloc, refresh,
        and the balance check are inlined — this is the detector's
        single hottest function.
        """
        key = rec[0]
        hi = rec[1]
        karr = self._key
        hiarr = self._hi
        left = self._left
        right = self._right
        height = self._height
        aug = self._aug
        free = self._free
        if free:
            idx = free.pop()
            karr[idx] = key
            hiarr[idx] = hi
            left[idx] = -1
            right[idx] = -1
            height[idx] = 1
            aug[idx] = hi
            self._rec[idx] = rec
        else:
            idx = len(karr)
            karr.append(key)
            hiarr.append(hi)
            left.append(-1)
            right.append(-1)
            height.append(1)
            aug.append(hi)
            self._rec.append(rec)
        stats = self.stats
        i = self.root
        if i < 0:
            self.root = idx
        else:
            path: List[int] = []
            append = path.append
            # descent and attach fused: the final comparison's direction
            # is remembered, not recomputed (counts are len(path) either
            # way — one comparison per visited node)
            while True:
                append(i)
                if key < karr[i]:
                    j = left[i]
                    if j < 0:
                        left[i] = idx
                        break
                else:
                    j = right[i]
                    if j < 0:
                        right[i] = idx
                        break
                i = j
            stats.comparisons += len(path)
            # Bottom-up refresh + rebalance of the descent path,
            # re-attaching any rotated subtree root to its parent (what
            # the recursive object implementation does via returns).
            # Once a node's height AND max-hi come out unchanged,
            # nothing above it can change either — one insert needs at
            # most one (single or double) rotation, and past it every
            # ancestor refresh is a no-op — so the walk stops early.
            # Comparison/rotation *counts* are untouched by the early
            # exit: the object core's extra _rebalance calls up the
            # path never count anything.
            #
            # A non-rotated ancestor's subtree keeps its old record set
            # plus exactly the new record, so its refreshed max-hi is
            # max(old aug, hi) — no child reads needed on that branch.
            balanced = self._balanced
            for j in range(len(path) - 1, -1, -1):
                node = path[j]
                l = left[node]
                r = right[node]
                lh = height[l] if l >= 0 else 0
                rh = height[r] if r >= 0 else 0
                bal = lh - rh if balanced else 0
                if bal > 1:
                    oh = height[node]
                    oa = aug[node]
                    ll = left[l]
                    lr = right[l]
                    if (height[ll] if ll >= 0 else 0) < (
                            height[lr] if lr >= 0 else 0):
                        # left-right: pre-rotate the left child left
                        # (inlined _rotate_left(l); x = l, y = lr)
                        t = left[lr]
                        right[l] = t
                        left[lr] = l
                        th = height[t] if t >= 0 else 0
                        llh = height[ll] if ll >= 0 else 0
                        height[l] = (llh if llh > th else th) + 1
                        a2 = hiarr[l]
                        if ll >= 0 and aug[ll] > a2:
                            a2 = aug[ll]
                        if t >= 0 and aug[t] > a2:
                            a2 = aug[t]
                        aug[l] = a2
                        yr = right[lr]
                        yrh = height[yr] if yr >= 0 else 0
                        hl2 = height[l]
                        height[lr] = (hl2 if hl2 > yrh else yrh) + 1
                        a3 = hiarr[lr]
                        if a2 > a3:
                            a3 = a2
                        if yr >= 0 and aug[yr] > a3:
                            a3 = aug[yr]
                        aug[lr] = a3
                        stats.rotations += 1
                        left[node] = lr
                        l = lr
                    # inlined _rotate_right(node); x = l, y = node
                    t = right[l]
                    left[node] = t
                    right[l] = node
                    th = height[t] if t >= 0 else 0
                    rh2 = height[r] if r >= 0 else 0
                    height[node] = (th if th > rh2 else rh2) + 1
                    a2 = hiarr[node]
                    if t >= 0 and aug[t] > a2:
                        a2 = aug[t]
                    if r >= 0 and aug[r] > a2:
                        a2 = aug[r]
                    aug[node] = a2
                    xl = left[l]
                    xlh = height[xl] if xl >= 0 else 0
                    hn = height[node]
                    height[l] = (xlh if xlh > hn else hn) + 1
                    a3 = hiarr[l]
                    if xl >= 0 and aug[xl] > a3:
                        a3 = aug[xl]
                    if a2 > a3:
                        a3 = a2
                    aug[l] = a3
                    stats.rotations += 1
                    sub = l
                elif bal < -1:
                    oh = height[node]
                    oa = aug[node]
                    rr = right[r]
                    rl = left[r]
                    if (height[rr] if rr >= 0 else 0) < (
                            height[rl] if rl >= 0 else 0):
                        # right-left: pre-rotate the right child right
                        # (inlined _rotate_right(r); y = r, x = rl)
                        t = right[rl]
                        left[r] = t
                        right[rl] = r
                        th = height[t] if t >= 0 else 0
                        rrh = height[rr] if rr >= 0 else 0
                        height[r] = (th if th > rrh else rrh) + 1
                        a2 = hiarr[r]
                        if t >= 0 and aug[t] > a2:
                            a2 = aug[t]
                        if rr >= 0 and aug[rr] > a2:
                            a2 = aug[rr]
                        aug[r] = a2
                        xl = left[rl]
                        xlh = height[xl] if xl >= 0 else 0
                        hr2 = height[r]
                        height[rl] = (xlh if xlh > hr2 else hr2) + 1
                        a3 = hiarr[rl]
                        if xl >= 0 and aug[xl] > a3:
                            a3 = aug[xl]
                        if a2 > a3:
                            a3 = a2
                        aug[rl] = a3
                        stats.rotations += 1
                        right[node] = rl
                        r = rl
                    # inlined _rotate_left(node); x = node, y = r
                    t = left[r]
                    right[node] = t
                    left[r] = node
                    lh2 = height[l] if l >= 0 else 0
                    th = height[t] if t >= 0 else 0
                    height[node] = (lh2 if lh2 > th else th) + 1
                    a2 = hiarr[node]
                    if l >= 0 and aug[l] > a2:
                        a2 = aug[l]
                    if t >= 0 and aug[t] > a2:
                        a2 = aug[t]
                    aug[node] = a2
                    yr = right[r]
                    yrh = height[yr] if yr >= 0 else 0
                    hn = height[node]
                    height[r] = (hn if hn > yrh else yrh) + 1
                    a3 = hiarr[r]
                    if a2 > a3:
                        a3 = a2
                    if yr >= 0 and aug[yr] > a3:
                        a3 = aug[yr]
                    aug[r] = a3
                    stats.rotations += 1
                    sub = r
                else:
                    # no rotation: refreshed aug is max(old aug, hi)
                    nh = (lh if lh > rh else rh) + 1
                    if nh != height[node]:
                        height[node] = nh
                        if hi > aug[node]:
                            aug[node] = hi
                        continue
                    if hi > aug[node]:
                        aug[node] = hi
                        continue
                    break
                if j:
                    p = path[j - 1]
                    if left[p] == node:
                        left[p] = sub
                    else:
                        right[p] = sub
                else:
                    self.root = sub
                if height[sub] == oh and aug[sub] == oa:
                    break
        self._size += 1
        stats.inserts += 1
        if self._size > stats.max_size:
            stats.max_size = self._size

    def remove(self, rec: Rec) -> bool:
        """Remove one stored record equal to ``rec``; False if absent.

        Iterative descent with an explicit ancestor stack, then
        bottom-up maintenance with the same stats accounting and early
        break as :meth:`insert`: one comparison per visited node,
        rotations counted only when they happen, and the climb stops as
        soon as a refresh leaves both height and augmentation unchanged
        (everything above is then provably a no-op in the recursive
        formulation too).
        """
        i = self.root
        if i < 0:
            return False
        key = rec[0]
        karr = self._key
        hiarr = self._hi
        left = self._left
        right = self._right
        height = self._height
        aug = self._aug
        recs = self._rec
        stats = self.stats
        path: List[int] = []
        append = path.append
        visited = 0
        while i >= 0:
            visited += 1
            k = karr[i]
            if key < k:
                append(i)
                i = left[i]
            elif key > k:
                append(i)
                i = right[i]
            elif recs[i] == rec:
                break
            else:
                # equal keys may sit on either side because of
                # tie-breaks; rare — the recursive two-sided search
                # keeps the exact per-node accounting
                stats.comparisons += visited
                return self._remove_equal(path, i, key, rec)
        stats.comparisons += visited
        if i < 0:
            return False
        # detach row i (successor splice when it has two children)
        l = left[i]
        r = right[i]
        recs[i] = None
        self._free.append(i)
        if l < 0:
            sub = r
        elif r < 0:
            sub = l
        else:
            # detach the right subtree's min; the recursive
            # _detach_min rebalances every left-spine node on the way
            # up — rotations counted, no comparisons — reproduced here
            m = r
            if left[m] < 0:
                new_r = right[m]
            else:
                spine = [m]
                spush = spine.append
                m = left[m]
                while left[m] >= 0:
                    spush(m)
                    m = left[m]
                left[spine[-1]] = right[m]
                sub2 = self._rebalance(spine[-1])
                for j in range(len(spine) - 2, -1, -1):
                    p = spine[j]
                    left[p] = sub2
                    sub2 = self._rebalance(p)
                new_r = sub2
            left[m] = l
            right[m] = new_r
            sub = self._rebalance(m)
        if not path:
            self.root = sub
        else:
            p = path[-1]
            if left[p] == i:
                left[p] = sub
            else:
                right[p] = sub
            balanced = self._balanced
            for j in range(len(path) - 1, -1, -1):
                node = path[j]
                l2 = left[node]
                r2 = right[node]
                lh = height[l2] if l2 >= 0 else 0
                rh = height[r2] if r2 >= 0 else 0
                oh = height[node]
                oa = aug[node]
                if balanced and (lh - rh > 1 or rh - lh > 1):
                    sub = self._rebalance(node)
                    if j:
                        p = path[j - 1]
                        if left[p] == node:
                            left[p] = sub
                        else:
                            right[p] = sub
                    else:
                        self.root = sub
                    if height[sub] == oh and aug[sub] == oa:
                        break
                else:
                    nh = (lh if lh > rh else rh) + 1
                    height[node] = nh
                    a = hiarr[node]
                    if l2 >= 0 and aug[l2] > a:
                        a = aug[l2]
                    if r2 >= 0 and aug[r2] > a:
                        a = aug[r2]
                    aug[node] = a
                    if nh == oh and a == oa:
                        break
        self._size -= 1
        stats.removals += 1
        return True

    def _remove_equal(self, path: List[int], i: int, key: int,
                      rec: Rec) -> bool:
        """Tie-broken equal-key removal below ``i`` (recursive slow path)."""
        left = self._left
        right = self._right
        removed, sub = self._remove(left[i], key, rec)
        left[i] = sub
        if not removed:
            removed, sub = self._remove(right[i], key, rec)
            right[i] = sub
        if not removed:
            return False
        node = i
        sub = self._rebalance(i)
        for j in range(len(path) - 1, -1, -1):
            p = path[j]
            if left[p] == node:
                left[p] = sub
            else:
                right[p] = sub
            node = p
            sub = self._rebalance(p)
        self.root = sub
        self._size -= 1
        self.stats.removals += 1
        return True

    def _remove(self, i: int, key: int, rec: Rec) -> tuple:
        if i < 0:
            return False, -1
        self.stats.comparisons += 1
        k = self._key[i]
        if key < k:
            removed, sub = self._remove(self._left[i], key, rec)
            self._left[i] = sub
        elif key > k:
            removed, sub = self._remove(self._right[i], key, rec)
            self._right[i] = sub
        elif self._rec[i] == rec:
            return True, self._pop_node(i)
        else:
            # equal keys may sit on either side because of tie-breaks
            removed, sub = self._remove(self._left[i], key, rec)
            self._left[i] = sub
            if not removed:
                removed, sub = self._remove(self._right[i], key, rec)
                self._right[i] = sub
        if not removed:
            return False, i
        return True, self._rebalance(i)

    def _pop_node(self, i: int) -> int:
        """Detach row ``i``, returning the subtree index replacing it."""
        l = self._left[i]
        r = self._right[i]
        self._rec[i] = None
        self._free.append(i)
        if l < 0:
            return r
        if r < 0:
            return l
        succ, new_right = self._detach_min(r)
        self._left[succ] = l
        self._right[succ] = new_right
        return self._rebalance(succ)

    def _detach_min(self, i: int) -> tuple:
        l = self._left[i]
        if l < 0:
            return i, self._right[i]
        mn, sub = self._detach_min(l)
        self._left[i] = sub
        return mn, self._rebalance(i)

    # -- queries ---------------------------------------------------------------

    def find_overlapping(self, lo: int, hi: int) -> List[Rec]:
        """All stored records overlapping ``[lo, hi)``, in key order.

        Same traversal, pruning, and stats accounting as
        :meth:`IntervalBST.find_overlapping` — ``visited`` nodes count
        as comparisons, every query lands in the fan-out buckets.
        """
        out: List[Rec] = []
        visited = 0
        i = self.root
        if i >= 0:
            karr = self._key
            hiarr = self._hi
            aug = self._aug
            left = self._left
            right = self._right
            recs = self._rec
            append_out = out.append
            # prune at push time: a child with aug <= lo would only be
            # popped and skipped, so never stack it — the visited set
            # (and thus the comparison count) is identical either way
            if aug[i] > lo:
                stack = [i]
                pop = stack.pop
                push = stack.append
                while stack:
                    i = pop()
                    visited += 1
                    l = left[i]
                    if l >= 0 and aug[l] > lo:
                        push(l)
                    if karr[i] < hi:
                        if lo < hiarr[i]:
                            append_out(recs[i])  # type: ignore[arg-type]
                        r = right[i]
                        if r >= 0 and aug[r] > lo:
                            push(r)
        stats = self.stats
        stats.comparisons += visited
        # note_query, inlined (this is the hottest query in the tool)
        k = len(out)
        stats.queries += 1
        stats.query_hits += k
        if k > stats.max_fanout:
            stats.max_fanout = k
        b = k.bit_length() if k else 0
        stats.fanout[b if b < FANOUT_NBUCKETS else FANOUT_NBUCKETS - 1] += 1
        # records sort lexicographically: unique keys mean element 0
        # alone orders them — same (lo, hi) order as the object tree
        if k > 1:
            out.sort()
        return out

    # -- checkpointing ---------------------------------------------------------

    def save_state(self) -> dict:
        """Portable ``repro-ckpt-v1`` encoding of the columns.

        Interned ids are process-local, so the site and accum columns
        are resolved back to (filename, line) and op strings — a store
        restored in another process re-interns against that process's
        tables.  Structure (indices, free list, root) round-trips
        exactly, so the restored store's future behavior — including
        slot reuse order and every stats delta — is identical.
        """
        site_val = SITES.value
        accum_val = ACCUMS.value
        recs = []
        for r in self._rec:
            if r is None:
                recs.append(None)
            else:
                dbg = site_val(r[3])
                recs.append((r[0], r[1], r[2], dbg.filename, dbg.line,
                             r[4], r[5], r[6], accum_val(r[7]), r[8]))
        return {
            "layout": FLAT_LAYOUT,
            "balanced": self._balanced,
            "root": self.root,
            "size": self._size,
            "free": list(self._free),
            "key": list(self._key),
            "hi": list(self._hi),
            "left": list(self._left),
            "right": list(self._right),
            "height": list(self._height),
            "aug": list(self._aug),
            "recs": recs,
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Rebuild from :meth:`save_state` output (re-interning ids)."""
        layout = state.get("layout")
        if layout != FLAT_LAYOUT:
            raise ValueError(
                f"flat store cannot load layout {layout!r} "
                f"(expected {FLAT_LAYOUT!r})")
        self._balanced = bool(state["balanced"])
        self.root = state["root"]
        self._size = state["size"]
        self._free = list(state["free"])
        self._key = list(state["key"])
        self._hi = list(state["hi"])
        self._left = list(state["left"])
        self._right = list(state["right"])
        self._height = list(state["height"])
        self._aug = list(state["aug"])
        site_id = SITES.id_of
        accum_id = ACCUMS.id_of
        recs: List[Optional[Rec]] = []
        for r in state["recs"]:
            if r is None:
                recs.append(None)
            else:
                recs.append((r[0], r[1], r[2],
                             site_id(DebugInfo(r[3], r[4])),
                             r[5], r[6], r[7], accum_id(r[8]), r[9]))
        self._rec = recs
        self.stats = TreeStats.from_dict(state["stats"])

    @classmethod
    def from_state(cls, state: dict) -> "FlatIntervalStore":
        store = cls(balanced=bool(state["balanced"]))
        store.load_state(state)
        return store

    # -- validation (tests and hypothesis) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural violation."""
        seen = set()

        def walk(i: int):
            if i < 0:
                return 0, None, None, 0
            assert i not in seen, f"row {i} reachable twice"
            seen.add(i)
            rec = self._rec[i]
            assert rec is not None, f"free row {i} still linked"
            assert self._key[i] == rec[0] and self._hi[i] == rec[1], (
                f"row {i} columns disagree with its record")
            lh, lmin, lmax, laug = walk(self._left[i])
            rh, rmin, rmax, raug = walk(self._right[i])
            k = self._key[i]
            if lmax is not None:
                assert lmax <= k, f"left child {lmax} > node {k}"
            if rmin is not None:
                assert rmin >= k, f"right child {rmin} < node {k}"
            h = 1 + max(lh, rh)
            assert self._height[i] == h, f"stale height at row {i}"
            if self._balanced:
                assert abs(lh - rh) <= 1, f"unbalanced at row {i}"
            expect_aug = max(self._hi[i], laug, raug)
            assert self._aug[i] == expect_aug, f"stale max-hi at row {i}"
            return (h, lmin if lmin is not None else k,
                    rmax if rmax is not None else k, expect_aug)

        walk(self.root)
        assert self._size == len(seen), "size disagrees with reachable rows"
        free = set(self._free)
        assert len(free) == len(self._free), "duplicate free-list entries"
        assert not (free & seen), "free row still reachable"
        assert len(seen) + len(free) == len(self._key), (
            "rows neither reachable nor free")
        ordered = list(self)
        for a, b in zip(ordered, ordered[1:]):
            assert a[1] <= b[0], f"stored records overlap: {a} vs {b}"

"""ASCII rendering of interval BSTs — the paper's Fig. 5 diagrams as text.

Debugging aid: print a detector's per-(rank, window) BST the way the
paper draws them, e.g. for Code 1 under the original tool::

    ([4], LOCAL_READ)
    ├── ([2...12], RMA_READ)
    └── ([7], LOCAL_WRITE)

Nodes render as ``(interval, type)`` with the debug location appended on
request; the layout is root-first with box-drawing branches.
"""

from __future__ import annotations

from typing import List

from ..intervals import MemoryAccess
from .interval_tree import IntervalBST

__all__ = ["dump_bst", "dump_detector_stores"]


def _label(acc: MemoryAccess, *, debug: bool) -> str:
    text = f"({acc.interval}, {acc.type})"
    if debug:
        text += f" @ {acc.debug}"
    if acc.accum_op:
        text += f" [{acc.accum_op}]"
    return text


def _walk_side(node, prefix, is_last, side, out, *, debug):
    connector = "└── " if is_last else "├── "
    out.append(prefix + connector + f"{side}: " + _label(node.value, debug=debug))
    child_prefix = prefix + ("    " if is_last else "│   ")
    children = [c for c in (node.left, node.right) if c is not None]
    for s, child in (("L", node.left), ("R", node.right)):
        if child is None:
            continue
        _walk_side(child, child_prefix, child is children[-1], s, out,
                   debug=debug)


def dump_bst(bst: IntervalBST, *, debug: bool = False) -> str:
    """Render the tree structure (root first, L/R labelled branches)."""
    root = bst.root
    if root is None:
        return "(empty)"
    out: List[str] = [_label(root.value, debug=debug)]
    children = [c for c in (root.left, root.right) if c is not None]
    for side, child in (("L", root.left), ("R", root.right)):
        if child is None:
            continue
        _walk_side(child, "", child is children[-1], side, out, debug=debug)
    return "\n".join(out)


def dump_detector_stores(detector, *, debug: bool = False) -> str:
    """Render every live BST of a BST-based detector, labelled by store."""
    stores = getattr(detector, "_stores", None)
    if not stores:
        return "(no live stores)"
    blocks: List[str] = []
    for (rank, wid), bst in sorted(stores.items()):
        header = f"rank {rank}, window {wid}: {len(bst)} node(s)"
        blocks.append(header)
        body = dump_bst(bst, debug=debug)
        blocks.append("\n".join("  " + line for line in body.splitlines()))
    return "\n".join(blocks)

"""A from-scratch AVL multiset.

RMA-Analyzer stores memory accesses in a balanced binary search tree
("the BST is implemented using the multiset containers provided by the
C++ standard", §5.1 — i.e. a red-black multiset).  We implement the
balanced multiset ourselves as an AVL tree: same O(log n) search /
insert / delete bounds the paper's complexity argument (§4.2) relies on.

The tree is generic over the payload; ordering is by an integer key with
an explicit tie-break sequence so equal keys (a genuine multiset) behave
deterministically.  Subtrees carry an augmentation slot maintained by a
user hook — :mod:`repro.bst.interval_tree` uses it to keep the maximum
interval upper bound per subtree, which is what turns the plain multiset
into an interval tree with O(log n + k) overlap queries.

Balancing can be disabled (``balanced=False``) to measure how much the
log-time claim depends on it (``benchmarks/bench_ablation_balance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, List, Optional, TypeVar

__all__ = ["AVLNode", "AVLTree", "TreeStats", "FANOUT_NBUCKETS"]

T = TypeVar("T")


class AVLNode(Generic[T]):
    """One tree node.  Attribute access is hot; keep it ``__slots__``-lean."""

    __slots__ = ("key", "tie", "value", "left", "right", "height", "aug")

    def __init__(self, key: int, tie: int, value: T) -> None:
        self.key = key
        self.tie = tie
        self.value = value
        self.left: Optional[AVLNode[T]] = None
        self.right: Optional[AVLNode[T]] = None
        self.height = 1
        self.aug: int = 0

    def __repr__(self) -> str:  # debugging aid only
        return f"AVLNode(key={self.key}, tie={self.tie}, value={self.value!r})"


#: fan-out buckets match ``repro.obs.registry.BUCKET_BOUNDS`` (powers of
#: two up to 2**20 plus overflow) so ``publish_obs`` can fold them into
#: an obs histogram bucket for bucket.  Kept as a literal: this module
#: stays importable without repro.obs and the obs side asserts equality.
FANOUT_NBUCKETS = 22


@dataclass
class TreeStats:
    """Operation counters used by the overhead analyses (Figs 10-12).

    ``comparisons`` counts key comparisons during descents, ``rotations``
    counts rebalancing rotations, ``max_size`` tracks the high-water node
    count — the quantity reported in the paper's Table 4.  ``queries`` /
    ``query_hits`` / ``fanout`` account the stabbing queries and their
    fan-out k (the O(log n + k) term): plain always-on integers here,
    surfaced as obs metrics only at publication time, because the query
    path is too hot for per-call registry traffic.
    """

    comparisons: int = 0
    rotations: int = 0
    inserts: int = 0
    removals: int = 0
    max_size: int = 0
    queries: int = 0
    query_hits: int = 0
    max_fanout: int = 0
    fanout: List[int] = field(
        default_factory=lambda: [0] * FANOUT_NBUCKETS)

    def note_query(self, k: int) -> None:
        """Account one overlap query returning ``k`` stored accesses."""
        self.queries += 1
        self.query_hits += k
        if k > self.max_fanout:
            self.max_fanout = k
        b = k.bit_length() if k > 0 else 0
        self.fanout[b if b < FANOUT_NBUCKETS else FANOUT_NBUCKETS - 1] += 1

    def to_dict(self) -> dict:
        """Checkpointable copy (``repro-ckpt-v1`` detector state)."""
        return {
            "comparisons": self.comparisons,
            "rotations": self.rotations,
            "inserts": self.inserts,
            "removals": self.removals,
            "max_size": self.max_size,
            "queries": self.queries,
            "query_hits": self.query_hits,
            "max_fanout": self.max_fanout,
            "fanout": list(self.fanout),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TreeStats":
        stats = cls(**{k: d[k] for k in (
            "comparisons", "rotations", "inserts", "removals", "max_size",
            "queries", "query_hits", "max_fanout")})
        stats.fanout = list(d["fanout"])
        return stats

    def merge(self, other: "TreeStats") -> None:
        self.comparisons += other.comparisons
        self.rotations += other.rotations
        self.inserts += other.inserts
        self.removals += other.removals
        self.max_size = max(self.max_size, other.max_size)
        self.queries += other.queries
        self.query_hits += other.query_hits
        self.max_fanout = max(self.max_fanout, other.max_fanout)
        for i, n in enumerate(other.fanout):
            self.fanout[i] += n


def _height(node: Optional[AVLNode[T]]) -> int:
    return node.height if node is not None else 0


class AVLTree(Generic[T]):
    """Balanced multiset of ``(key, value)`` pairs ordered by ``(key, tie)``.

    ``augment`` is called bottom-up after any structural change with the
    node to refresh; it must recompute ``node.aug`` from the node's value
    and its children's ``aug``.
    """

    def __init__(
        self,
        augment: Optional[Callable[[AVLNode[T]], None]] = None,
        *,
        balanced: bool = True,
    ) -> None:
        self.root: Optional[AVLNode[T]] = None
        self._size = 0
        self._next_tie = 0
        self._augment = augment
        self._balanced = balanced
        self.stats = TreeStats()

    # -- size / iteration --------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[T]:
        """In-order traversal of payloads (ascending key)."""
        stack: List[AVLNode[T]] = []
        node = self.root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.value
            node = node.right

    def height(self) -> int:
        return _height(self.root)

    def clear(self) -> None:
        self.root = None
        self._size = 0

    # -- maintenance ---------------------------------------------------------

    def _refresh(self, node: AVLNode[T]) -> None:
        node.height = 1 + max(_height(node.left), _height(node.right))
        if self._augment is not None:
            self._augment(node)

    def _rotate_right(self, y: AVLNode[T]) -> AVLNode[T]:
        x = y.left
        assert x is not None
        y.left = x.right
        x.right = y
        self._refresh(y)
        self._refresh(x)
        self.stats.rotations += 1
        return x

    def _rotate_left(self, x: AVLNode[T]) -> AVLNode[T]:
        y = x.right
        assert y is not None
        x.right = y.left
        y.left = x
        self._refresh(x)
        self._refresh(y)
        self.stats.rotations += 1
        return y

    def _rebalance(self, node: AVLNode[T]) -> AVLNode[T]:
        self._refresh(node)
        if not self._balanced:
            return node
        balance = _height(node.left) - _height(node.right)
        if balance > 1:
            assert node.left is not None
            if _height(node.left.left) < _height(node.left.right):
                node.left = self._rotate_left(node.left)
            return self._rotate_right(node)
        if balance < -1:
            assert node.right is not None
            if _height(node.right.right) < _height(node.right.left):
                node.right = self._rotate_right(node.right)
            return self._rotate_left(node)
        return node

    # -- mutation -------------------------------------------------------------

    def insert(self, key: int, value: T) -> None:
        """Insert ``value`` under ``key`` (duplicates allowed)."""
        tie = self._next_tie
        self._next_tie += 1
        self.root = self._insert(self.root, key, tie, value)
        self._size += 1
        self.stats.inserts += 1
        if self._size > self.stats.max_size:
            self.stats.max_size = self._size

    def _insert(
        self, node: Optional[AVLNode[T]], key: int, tie: int, value: T
    ) -> AVLNode[T]:
        if node is None:
            leaf = AVLNode(key, tie, value)
            self._refresh(leaf)
            return leaf
        self.stats.comparisons += 1
        if (key, tie) < (node.key, node.tie):
            node.left = self._insert(node.left, key, tie, value)
        else:
            node.right = self._insert(node.right, key, tie, value)
        return self._rebalance(node)

    def remove_value(self, key: int, value: T) -> bool:
        """Remove one node holding exactly ``value`` under ``key``.

        Returns False when no such node exists.  Identity of the payload
        (``==``) is the removal criterion, matching ``multiset::erase``
        of a located element.
        """
        removed, self.root = self._remove(self.root, key, value)
        if removed:
            self._size -= 1
            self.stats.removals += 1
        return removed

    def _remove(
        self, node: Optional[AVLNode[T]], key: int, value: T
    ) -> tuple[bool, Optional[AVLNode[T]]]:
        if node is None:
            return False, None
        self.stats.comparisons += 1
        if key < node.key:
            removed, node.left = self._remove(node.left, key, value)
        elif key > node.key:
            removed, node.right = self._remove(node.right, key, value)
        elif node.value == value:
            return True, self._pop_node(node)
        else:
            # equal keys may sit on either side because of tie-breaks
            removed, node.left = self._remove(node.left, key, value)
            if not removed:
                removed, node.right = self._remove(node.right, key, value)
        if not removed:
            return False, node
        return True, self._rebalance(node)

    def _pop_node(self, node: AVLNode[T]) -> Optional[AVLNode[T]]:
        """Detach ``node``, returning the subtree that replaces it."""
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        # replace with the in-order successor, removed recursively so the
        # whole path keeps correct heights/augmentations
        succ, new_right = self._detach_min(node.right)
        succ.left = node.left
        succ.right = new_right
        return self._rebalance(succ)

    def _detach_min(
        self, node: AVLNode[T]
    ) -> tuple[AVLNode[T], Optional[AVLNode[T]]]:
        if node.left is None:
            return node, node.right
        mn, node.left = self._detach_min(node.left)
        return mn, self._rebalance(node)

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Structure-preserving state capture (``repro-ckpt-v1``).

        Encodes the exact node layout (preorder, with child-presence
        flags) plus the tie counter and operation stats, so a restored
        tree is byte-for-byte the same *future*: identical rebalancing,
        identical legacy-search outcomes, identical comparison counts.
        Iterative on purpose — an unbalanced ablation tree can be O(n)
        deep, which would blow the recursion limit (and naive pickling).

        The per-node value payloads are captured by reference; serialize
        the snapshot (or stop mutating the payloads) before mutating the
        live tree further.
        """
        nodes: List[tuple] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            nodes.append((node.key, node.tie, node.value, node.height,
                          node.aug, node.left is not None,
                          node.right is not None))
            stack.append(node.right)  # left is processed first (preorder)
            stack.append(node.left)
        return {
            "nodes": nodes,
            "size": self._size,
            "next_tie": self._next_tie,
            "balanced": self._balanced,
            "stats": self.stats.to_dict(),
        }

    def restore(self, snap: dict) -> None:
        """Rebuild this tree from :meth:`snapshot` output (iterative)."""
        if bool(snap["balanced"]) != self._balanced:
            raise ValueError(
                "checkpoint balanced=%s does not match tree balanced=%s"
                % (snap["balanced"], self._balanced))
        records = snap["nodes"]
        if not records:
            self.root = None
        else:
            def make(rec: tuple) -> AVLNode[T]:
                n = AVLNode(rec[0], rec[1], rec[2])
                n.height = rec[3]
                n.aug = rec[4]
                return n

            root = make(records[0])
            # stack entries: [node, needs_left, needs_right]; preorder
            # guarantees the next record is the deepest unfilled slot
            stack = [[root, records[0][5], records[0][6]]]
            for rec in records[1:]:
                child = make(rec)
                while not stack[-1][1] and not stack[-1][2]:
                    stack.pop()
                top = stack[-1]
                if top[1]:
                    top[0].left = child
                    top[1] = False
                else:
                    top[0].right = child
                    top[2] = False
                stack.append([child, rec[5], rec[6]])
            self.root = root
        self._size = snap["size"]
        self._next_tie = snap["next_tie"]
        self.stats = TreeStats.from_dict(snap["stats"])

    # -- validation (used by tests and hypothesis) -----------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when BST order / AVL balance is violated."""

        def walk(node: Optional[AVLNode[T]]) -> tuple[int, tuple, tuple]:
            if node is None:
                return 0, (), ()
            lh, lmin, lmax = walk(node.left)
            rh, rmin, rmax = walk(node.right)
            me = (node.key, node.tie)
            if lmax:
                assert lmax <= me, f"left child {lmax} > node {me}"
            if rmin:
                assert rmin >= me, f"right child {rmin} < node {me}"
            h = 1 + max(lh, rh)
            assert node.height == h, f"stale height at {me}"
            if self._balanced:
                assert abs(lh - rh) <= 1, f"unbalanced at {me}"
            lo = lmin or me
            hi = rmax or me
            return h, lo, hi

        walk(self.root)
        assert self._size == sum(1 for _ in self)

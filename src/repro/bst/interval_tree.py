"""Interval-augmented BST of memory accesses.

This is the data structure at the heart of both the baseline
RMA-Analyzer and the paper's contribution: a balanced BST keyed by the
*lower bound* of each access's byte interval.  The augmentation keeps,
per subtree, the maximum interval upper bound, which makes
:meth:`IntervalBST.find_overlapping` a textbook interval-tree query:
O(log n + k) instead of a full scan.

The *legacy* query of the original RMA-Analyzer (lower-bound-only
comparison, the source of the paper's false negative in Fig. 5a) lives
in :mod:`repro.bst.legacy_search` and operates on this same tree.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..intervals import Interval, MemoryAccess
from .avl import AVLNode, AVLTree, TreeStats

__all__ = ["IntervalBST"]


def _augment_max_hi(node: AVLNode[MemoryAccess]) -> None:
    """Maintain ``node.aug`` = max interval upper bound in the subtree."""
    hi = node.value.interval.hi
    if node.left is not None and node.left.aug > hi:
        hi = node.left.aug
    if node.right is not None and node.right.aug > hi:
        hi = node.right.aug
    node.aug = hi


class IntervalBST:
    """Multiset of :class:`MemoryAccess` ordered by interval lower bound.

    ``balanced=False`` degrades to a plain BST (ablation support).
    """

    def __init__(self, *, balanced: bool = True) -> None:
        self._tree: AVLTree[MemoryAccess] = AVLTree(
            _augment_max_hi, balanced=balanced
        )

    # -- plumbing ------------------------------------------------------------

    @property
    def root(self) -> Optional[AVLNode[MemoryAccess]]:
        return self._tree.root

    @property
    def stats(self) -> TreeStats:
        return self._tree.stats

    def __len__(self) -> int:
        return len(self._tree)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._tree)

    def height(self) -> int:
        return self._tree.height()

    def clear(self) -> None:
        self._tree.clear()

    def check_invariants(self) -> None:
        self._tree.check_invariants()
        self._check_aug(self._tree.root)

    def _check_aug(self, node: Optional[AVLNode[MemoryAccess]]) -> int:
        if node is None:
            return 0
        expect = max(
            node.value.interval.hi,
            self._check_aug(node.left),
            self._check_aug(node.right),
        )
        assert node.aug == expect, f"stale max-hi augmentation at {node!r}"
        return expect

    # -- mutation --------------------------------------------------------------

    def insert(self, acc: MemoryAccess) -> None:
        self._tree.insert(acc.interval.lo, acc)

    def remove(self, acc: MemoryAccess) -> bool:
        """Remove one stored access equal to ``acc``; False if absent."""
        return self._tree.remove_value(acc.interval.lo, acc)

    # -- queries ---------------------------------------------------------------

    def find_overlapping(self, interval: Interval) -> List[MemoryAccess]:
        """All stored accesses whose interval overlaps ``interval``.

        Correct interval-tree search: prune subtrees whose max upper
        bound is at or below ``interval.lo`` and keys at or beyond
        ``interval.hi``.  Results come back in key order.
        """
        out: List[MemoryAccess] = []
        lo, hi = interval.lo, interval.hi
        visited = 0
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            if node is None or node.aug <= lo:
                continue
            visited += 1
            stack.append(node.left)
            iv = node.value.interval
            if iv.lo < hi and lo < iv.hi:
                out.append(node.value)
            if node.key < hi:
                stack.append(node.right)
        stats = self._tree.stats
        stats.comparisons += visited
        # stabbing-query fan-out k (the paper's O(log n + k) term) goes
        # into the always-on TreeStats ints — this path is too hot for
        # registry traffic; publish_obs folds the buckets into the
        # bst.query_fanout histogram at the end of the run
        stats.note_query(len(out))
        # the explicit stack pops right-to-left; restore key order
        out.sort(key=lambda a: (a.interval.lo, a.interval.hi))
        return out

    def find_containing(self, addr: int) -> List[MemoryAccess]:
        """Stabbing query: all stored accesses containing byte ``addr``."""
        return self.find_overlapping(Interval(addr, addr + 1))

    def snapshot(self) -> List[MemoryAccess]:
        """In-order copy of the stored accesses (tests, reports)."""
        return list(self._tree)

    # -- checkpointing ---------------------------------------------------------
    # (named save/load_state: ``snapshot`` above predates checkpoints and
    # means "in-order access list" throughout the tests and reports)

    def save_state(self) -> dict:
        """Structure-preserving checkpoint state (``repro-ckpt-v1``)."""
        return {"balanced": self._tree._balanced,
                "tree": self._tree.snapshot()}

    def load_state(self, state: dict) -> None:
        """Rebuild from :meth:`save_state` output; shape, tie counter and
        stats all round-trip, so future behavior is identical."""
        self._tree = AVLTree(_augment_max_hi, balanced=state["balanced"])
        self._tree.restore(state["tree"])

    @classmethod
    def from_state(cls, state: dict) -> "IntervalBST":
        bst = cls(balanced=state["balanced"])
        bst.load_state(state)
        return bst

#!/usr/bin/env python
"""Quickstart: detect your first MPI-RMA data race.

Runs a tiny two-rank program on the simulated MPI-RMA runtime:

* rank 0 issues an ``MPI_Get`` and then — while the Get may still be in
  flight — reads the destination buffer.  That is the paper's Fig. 2a
  race: the buffer's value depends on timing.
* the corrected version waits for the epoch to close before reading.

Usage::

    python examples/quickstart.py
"""

from repro import OurDetector, World


def racy_program(ctx):
    """Fig. 2a: Get followed by a Load of the same buffer."""
    win = yield ctx.win_allocate("X", 64)
    buf = ctx.alloc("buf", 64, rma_hint=True)

    ctx.win_lock_all(win)
    if ctx.rank == 0:
        ctx.get(win, target=1, disp=0, buf=buf, count=8)
        ctx.load(buf, 0)  # RACE: the Get has not completed
    ctx.win_unlock_all(win)
    yield ctx.win_free(win)


def fixed_program(ctx):
    """The fix: read after the epoch closed (completion guaranteed)."""
    win = yield ctx.win_allocate("X", 64)
    buf = ctx.alloc("buf", 64, rma_hint=True)

    ctx.win_lock_all(win)
    if ctx.rank == 0:
        ctx.get(win, target=1, disp=0, buf=buf, count=8)
    ctx.win_unlock_all(win)  # completes the Get
    if ctx.rank == 0:
        ctx.load(buf, 0)  # safe now
    yield ctx.win_free(win)


def main() -> None:
    print("== racy version ==")
    detector = OurDetector()
    World(nranks=2, detectors=[detector]).run(racy_program)
    for report in detector.reports:
        print(report.message)
    assert detector.race_detected

    print("\n== fixed version ==")
    detector = OurDetector()
    World(nranks=2, detectors=[detector]).run(fixed_program)
    print("races found:", detector.reports_total)
    assert not detector.race_detected


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Race hunt across a seeded, ground-truth-labeled scenario corpus.

The paper validates its detector on a fixed microbenchmark suite; this
example drives the :mod:`repro.scenarios` generator instead — an
unbounded labeled corpus over epoch style x access shape x race kind —
and hunts with the full detector zoo:

1. compose a deterministic corpus (same ``SEED`` => same scenarios,
   byte for byte);
2. pick one racy scenario and run it live under the paper's detector:
   the report names exactly the labeled racing pair, and the ``new``
   access is the labeled abort location (where ``MPI_Abort`` fires);
3. score every detector over the whole corpus and print the
   precision/recall scoreboard — the known blind spots of the
   comparison tools fall out as classified disagreements, not
   mystery regressions.

Usage::

    python examples/race_hunt.py [seed] [count]
"""

import sys
from collections import Counter

from repro.core import OurDetector
from repro.scenarios import (
    TOOL_NAMES,
    generate_corpus,
    run_scenario,
    score_corpus,
)

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 7
COUNT = int(sys.argv[2]) if len(sys.argv) > 2 else 60


def hunt_one(scenario) -> None:
    """Run one labeled scenario live and compare report vs labels."""
    print(f"$ mpiexec -n {scenario.nranks} ./{scenario.file}"
          f"   # {scenario.labels.description}\n")
    detector = OurDetector()
    flagged, _ = run_scenario(scenario, detector)
    print(f"[{detector.name}] {'error' if flagged else 'clean'}")
    for report in detector.reports[:1]:
        print(f"    {report.message}")
    print(f"labels: RACE_KIND={scenario.labels.race_kind}"
          f" RACE_PAIR={' vs '.join(scenario.labels.race_pair)}")
    print(f"        abort expected at {scenario.labels.abort_location}\n")


def main() -> None:
    corpus = generate_corpus(SEED, COUNT)
    racy = sum(1 for sc in corpus if sc.racy)
    print(f"corpus: {len(corpus)} scenarios (seed {SEED}), "
          f"{racy} racy / {len(corpus) - racy} known-negative controls\n")

    hunt_one(next(sc for sc in corpus if sc.racy))

    report = score_corpus(corpus)
    print(f"{'tool':<14} {'precision':>9} {'recall':>7} {'abort-acc':>9}")
    for tool in TOOL_NAMES:
        o = report["tools"][tool]["overall"]
        acc = o["abort_accuracy"]
        print(f"{tool:<14} {o['precision']:>9.3f} {o['recall']:>7.3f} "
              f"{acc if acc is None else format(acc, '>9.3f')}")

    classes = Counter((d["tool"], d["class"])
                      for d in report["disagreements"])
    if classes:
        print("\nevery disagreement lands in a known defect class:")
        for (tool, cls), n in sorted(classes.items()):
            print(f"  {tool:<14} {cls:<32} x{n}")
    genuine = [d for d in report["disagreements"]
               if d["class"] == "genuine-regression"]
    assert not genuine, genuine
    print("\n0 genuine regressions — the gate would pass.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Race hunt: find and fix an injected bug in a real application.

Reproduces the paper's Fig. 9 workflow end to end:

1. inject the duplicated ``MPI_Put`` into MiniVite (Fig. 9a),
2. run it under our detector — it reports the race with exact source
   locations (Fig. 9b),
3. "fix" the code (drop the duplicate) and re-run: clean.

Also shows the same hunt with the original RMA-Analyzer (which catches
this particular race too) and with the MUST-RMA model.

Usage::

    python examples/race_hunt.py
"""

from repro import MustRma, OurDetector, RmaAnalyzerLegacy, World
from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)

NRANKS = 4
NVERTICES = 2048


def run(inject: bool, factory) -> object:
    config = MiniViteConfig(nvertices=NVERTICES, inject_put_race=inject)
    graph = default_graph(config)
    plan = make_comm_plan(graph, NRANKS)
    detector = factory()
    World(NRANKS, [detector]).run(
        minivite_program, graph, plan, config, MiniViteResult()
    )
    return detector


def main() -> None:
    print(f"$ mpiexec -n {NRANKS} ./miniVite -n {NVERTICES}   # with the bug\n")
    for factory in (OurDetector, RmaAnalyzerLegacy, MustRma):
        detector = run(inject=True, factory=factory)
        verdict = "error" if detector.race_detected else "no error found"
        print(f"[{detector.name}] {verdict}")
        for report in detector.reports[:1]:
            print(f"    {report.message}")
    print("\nthe reports blame ./dspl.hpp:612 and :614 — the duplicated Put.")

    print("\n$ mpiexec -n 4 ./miniVite -n 2048   # after removing the duplicate\n")
    for factory in (OurDetector, RmaAnalyzerLegacy, MustRma):
        detector = run(inject=False, factory=factory)
        verdict = "error" if detector.race_detected else "clean"
        print(f"[{detector.name}] {verdict}")
        assert not detector.race_detected


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""CFD-Proxy analysis overhead — the paper's Fig. 10 as an ASCII chart.

The halo-exchange workload is where the new insertion algorithm shines:
every origin's puts land in a dedicated contiguous block of the target
window, so they merge into a handful of BST nodes (paper: 90,004 -> 54,
a 99.94% reduction), which cuts the analysis overhead by up to 2x vs
the original RMA-Analyzer.  MUST-RMA, which instruments every access,
is the slowest.  The legacy tools also report a *false positive* here —
the §6 ``MPI_Win_flush`` mishandling.

Usage::

    python examples/cfd_overhead.py [nranks] [iterations]
"""

import sys

from repro.apps import CfdConfig
from repro.experiments import fig10_cfd_epoch_time


def main(nranks: int = 12, iterations: int = 50) -> None:
    result = fig10_cfd_epoch_time(
        nranks=nranks, config=CfdConfig(iterations=iterations)
    )
    print(result)

    runs = result.data
    legacy = runs["RMA-Analyzer"]
    ours = runs["Our Contribution"]
    base = runs["Baseline"].sim_elapsed_ms
    speedup = (legacy.sim_elapsed_ms - base) / max(ours.sim_elapsed_ms - base, 1e-9)
    print(f"analysis-overhead reduction vs RMA-Analyzer: {speedup:.2f}x "
          f"(paper: up to 2x)")
    print(f"BST nodes: {legacy.total_max_nodes:,} -> {ours.total_max_nodes:,} "
          f"({100 * (1 - ours.total_max_nodes / legacy.total_max_nodes):.2f}% "
          f"reduction; paper: 99.94%)")
    if legacy.races:
        print(f"note: RMA-Analyzer reported {legacy.races} (false) races "
              "caused by its MPI_Win_flush handling — §6 of the paper")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)

#!/usr/bin/env python
"""MiniVite under the race detectors — the Figs 11/12 + Table 4 story.

Runs one phase of distributed Louvain (the paper's MiniVite workload)
on the simulated runtime, once per tool, and prints:

* the simulated execution time of every tool vs the baseline,
* the per-rank BST node counts of the original RMA-Analyzer vs our
  contribution (Table 4: the reduction is tiny — MiniVite's per-vertex
  attribute accesses are not adjacent, so almost nothing merges).

Usage::

    python examples/minivite_analysis.py [nvertices] [nranks]
"""

import sys

from repro.apps import (
    DETECTOR_FACTORIES,
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
    run_app,
)
from repro.experiments import render_table


def main(nvertices: int = 8192, nranks: int = 8) -> None:
    config = MiniViteConfig(nvertices=nvertices)
    graph = default_graph(config)
    plan = make_comm_plan(graph, nranks)
    print(f"graph: {graph.nvertices:,} vertices, {graph.nedges:,} edges, "
          f"{nranks} ranks")

    result = MiniViteResult()
    rows = []
    for tool, factory in DETECTOR_FACTORIES.items():
        run = run_app("minivite", minivite_program, nranks, factory(),
                      graph, plan, config, result)
        rows.append([
            tool,
            run.sim_elapsed_ms,
            run.analysis_seconds,
            run.max_nodes_one_rank,
            run.races,
        ])

    print()
    print(render_table(
        ["tool", "sim time (ms)", "analysis wall (s)",
         "BST nodes (max/rank)", "races"],
        rows,
    ))
    print(f"\nLouvain result: {result.communities_before:,} -> "
          f"{result.communities_after:,} communities, "
          f"modularity {result.modularity:.3f}")

    legacy = next(r for r in rows if r[0] == "RMA-Analyzer")
    ours = next(r for r in rows if r[0] == "Our Contribution")
    reduction = 100.0 * (legacy[3] - ours[3]) / max(legacy[3], 1)
    print(f"node reduction vs RMA-Analyzer: {reduction:.2f}% "
          f"(paper Table 4: 0.04%-6.29%)")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)

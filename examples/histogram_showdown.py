#!/usr/bin/env python
"""Three ways to build a distributed histogram — and what detectors say.

A classic MPI-RMA exercise: every rank counts samples into bins that
live in other ranks' windows.

1. ``MPI_Accumulate`` — correct by the §2.1 atomicity property.
2. Manual Get + add + Put — the classic lost-update race.
3. Manual RMW under exclusive ``MPI_Win_lock`` — correct again, but only
   a detector with per-target-lock *and* precise flush support (our
   contribution) can prove it; MUST-RMA's flush blindness (§6) and the
   original tool's lock_all-only instrumentation both cry wolf.

Usage::

    python examples/histogram_showdown.py [nranks]
"""

import sys

from repro import MustRma, OurDetector, RmaAnalyzerLegacy, World
from repro.apps.histogram import HistogramConfig, HistogramResult, histogram_program
from repro.experiments import render_table

VARIANTS = [
    ("MPI_Accumulate", HistogramConfig()),
    ("manual Get+Put (buggy)", HistogramConfig(use_accumulate=False)),
    ("exclusive-lock RMW", HistogramConfig(use_accumulate=False,
                                           use_locks=True)),
]
TOOLS = [OurDetector, RmaAnalyzerLegacy, MustRma]


def main(nranks: int = 4) -> None:
    rows = []
    for label, config in VARIANTS:
        row = [label]
        for factory in TOOLS:
            detector = factory()
            result = HistogramResult()
            World(nranks, [detector]).run(histogram_program, config, result)
            row.append("error" if detector.race_detected else "clean")
        row.append(result.total_counted)
        rows.append(row)

    headers = ["variant"] + [f().name for f in TOOLS] + ["samples counted"]
    print(render_table(headers, rows))
    print(
        "\nOnly the buggy middle variant is a real race; the lock-based fix\n"
        "is a false positive for tools without per-target-lock + precise\n"
        "MPI_Win_flush support (the paper's §5.1 / §6 limitations)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)

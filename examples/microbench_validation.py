#!/usr/bin/env python
"""Regenerate the paper's validation tables (Tables 2 and 3).

Runs the whole two-operation microbenchmark suite under the original
RMA-Analyzer, the MUST-RMA model and our contribution, and prints the
confusion matrices plus the four named codes of Table 2.

Usage::

    python examples/microbench_validation.py [--related-work]
"""

import sys

from repro.experiments import PAPER_TABLE3, table2_named_codes, table3_confusion


def main(include_related_work: bool = False) -> None:
    print(table2_named_codes())
    print()
    result = table3_confusion(include_related_work=include_related_work)
    print(result)

    print("\npaper Table 3 (154 codes: 47 race / 107 safe):")
    for tool, cells in PAPER_TABLE3.items():
        ours = result.data.get(tool, {})
        print(f"  {tool:18s} paper FP={cells['FP']} FN={cells['FN']}  |  "
              f"reproduced FP={ours.get('FP')} FN={ours.get('FN')}")


if __name__ == "__main__":
    main("--related-work" in sys.argv[1:])

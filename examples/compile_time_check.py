#!/usr/bin/env python
"""The §7 future-work pipeline: static analysis + the strided extension.

1. Run the compile-time local-concurrency checker on the paper's Code 1
   — the race is proven *before execution*, with both source lines.
2. Evaluate the static pass over the whole microbenchmark suite: the
   origin-side races are caught pre-run (zero static false positives);
   the static/dynamic combination drops provably race-free lines from
   runtime instrumentation.
3. Show the §6(3) strided-merging extension shrinking MiniVite's BST by
   an order of magnitude where the paper's adjacency-only merging gets
   less than one percent.

Usage::

    python examples/compile_time_check.py
"""

from repro.apps import (
    MiniViteConfig,
    MiniViteResult,
    default_graph,
    make_comm_plan,
    minivite_program,
)
from repro.core import OurDetector, StridedDetector
from repro.detectors import RmaAnalyzerLegacy
from repro.experiments import static_analysis
from repro.mpi import World
from repro.staticcheck import check_program, code1_static


def main() -> None:
    print("== compile-time check of Code 1 (Fig. 8a) ==")
    report = check_program(code1_static())
    for race in report.races:
        print(" ", race.message)
    assert not report.clean

    print("\n== static pass over the microbenchmark suite ==")
    print(static_analysis())

    print("\n== strided merging (the §6(3) extension) on MiniVite ==")
    config = MiniViteConfig(nvertices=4096)
    graph = default_graph(config)
    plan = make_comm_plan(graph, 8)
    for factory in (RmaAnalyzerLegacy, OurDetector, StridedDetector):
        detector = factory()
        World(8, [detector]).run(minivite_program, graph, plan, config,
                                 MiniViteResult())
        nodes = detector.node_stats().total_max_nodes
        print(f"  {detector.name:28s} BST nodes: {nodes:,}")


if __name__ == "__main__":
    main()
